/**
 * @file
 * Tests for the fault-injection subsystem: the fault taxonomy and
 * suite catalog, the FaultCampaign determinism contract (no-fault
 * campaigns reproduce the baseline; faulted campaigns are
 * bit-identical at any thread count), graceful degradation through
 * redundancy, and the crash-safety of the atomic artifact writers
 * (a SIGKILL mid-write never leaves a truncated file at a final
 * path).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "components/catalog.hh"
#include "exec/thread_pool.hh"
#include "fault/campaign.hh"
#include "fault/fault_spec.hh"
#include "pipeline/redundancy.hh"
#include "plot/chart.hh"
#include "plot/csv_writer.hh"
#include "plot/json_writer.hh"
#include "plot/svg_writer.hh"
#include "skyline/report.hh"
#include "studies/presets.hh"
#include "support/atomic_file.hh"
#include "support/errors.hh"
#include "workload/spa_pipeline.hh"
#include "workload/stage_eval.hh"
#include "workload/throughput.hh"

namespace {

using namespace uavf1;
using namespace uavf1::fault;

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

// Defined first so it runs before any test spins up worker threads:
// the child process forks from a single-threaded parent.
TEST(AtomicWrite, SigkillMidBatchLeavesNoTruncatedArtifact)
{
    namespace fs = std::filesystem;
    const std::string dir = "artifacts/fault_test/kill";
    fs::remove_all(dir);
    fs::create_directories(dir);

    // A payload big enough that a write takes real time, so the
    // SIGKILL lands mid-write with high probability.
    std::vector<plot::Series> series;
    series.emplace_back("degraded");
    for (int i = 0; i < 20000; ++i)
        series.back().add(i, i * 0.5);
    plot::Chart chart("kill test", plot::Axis("x"),
                      plot::Axis("y"));
    chart.add(series.front());
    const std::string json =
        plot::JsonObject().add("study", "kill").render();
    std::string html = "<html><body>";
    for (int i = 0; i < 5000; ++i)
        html += "<p>row</p>";
    html += "</body></html>\n";

    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        // Overwrite the same final paths forever (the parent kills
        // us); every publish is a write-temp-then-rename.
        for (;;) {
            plot::CsvWriter::writeFile(series, dir + "/a.csv", "x",
                                       "y");
            plot::writeJsonFile(json, dir + "/a.json");
            plot::SvgWriter().writeFile(chart, dir + "/a.svg");
            skyline::ReportWriter::writeFile(html, dir + "/a.html");
        }
        _exit(0); // Unreachable.
    }

    // Wait until every artifact has been published at least once,
    // then kill the writer mid-batch.
    const auto all_exist = [&] {
        return fs::exists(dir + "/a.csv") &&
               fs::exists(dir + "/a.json") &&
               fs::exists(dir + "/a.svg") &&
               fs::exists(dir + "/a.html");
    };
    for (int spins = 0; spins < 20000 && !all_exist(); ++spins)
        usleep(500);
    ASSERT_TRUE(all_exist()) << "writer child never published";
    usleep(20000); // Land inside a later write, not the first.
    kill(child, SIGKILL);
    int status = 0;
    waitpid(child, &status, 0);
    ASSERT_TRUE(WIFSIGNALED(status));

    // The child only ever writes one content per path, so any
    // complete published file must match it byte-for-byte; a
    // truncated or interleaved file at a final path is a
    // crash-safety failure. Leftover *.tmp files are permitted.
    EXPECT_EQ(slurp(dir + "/a.csv"),
              plot::CsvWriter::render(series, "x", "y"));
    EXPECT_EQ(slurp(dir + "/a.json"), json + "\n");
    EXPECT_EQ(slurp(dir + "/a.svg"),
              plot::SvgWriter().render(chart));
    EXPECT_EQ(slurp(dir + "/a.html"), html);
}

TEST(AtomicWrite, FailurePathsNameTheFile)
{
    EXPECT_THROW(
        writeFileAtomic("artifacts/no/such/dir/file.txt", "x"),
        ModelError);
    try {
        writeFileAtomic("artifacts/no/such/dir/file.txt", "x");
        FAIL() << "expected ModelError";
    } catch (const ModelError &e) {
        EXPECT_NE(std::string(e.what()).find(
                      "artifacts/no/such/dir/file.txt"),
                  std::string::npos);
    }
}

TEST(FaultSpec, ValidationNamesTheOffendingField)
{
    FaultSpec spec;
    spec.kind = FaultKind::CeilingDerate;
    EXPECT_THROW(validateFaultSpec(spec), ModelError); // No name.

    spec.name = "demo";
    spec.probability = 1.5;
    EXPECT_THROW(validateFaultSpec(spec), ModelError);
    spec.probability = -0.1;
    EXPECT_THROW(validateFaultSpec(spec), ModelError);
    spec.probability = 0.5;

    spec.derate = 0.0;
    EXPECT_THROW(validateFaultSpec(spec), ModelError);
    spec.derate = 1.5;
    try {
        validateFaultSpec(spec);
        FAIL() << "expected ModelError";
    } catch (const ModelError &e) {
        EXPECT_NE(std::string(e.what()).find("derate"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("demo"),
                  std::string::npos);
    }
    spec.derate = 0.5;
    EXPECT_NO_THROW(validateFaultSpec(spec));

    spec.kind = FaultKind::ThermalThrottle;
    spec.dvfs.minFrequencyFraction = 0.0;
    EXPECT_THROW(validateFaultSpec(spec), ModelError);
    spec.dvfs.minFrequencyFraction = 0.2;
    EXPECT_NO_THROW(validateFaultSpec(spec));

    spec.kind = FaultKind::StageLatencyInflation;
    EXPECT_THROW(validateFaultSpec(spec), ModelError); // No stage.
    spec.stage = "SLAM";
    spec.latencyFactor = 0.5;
    EXPECT_THROW(validateFaultSpec(spec), ModelError);
    spec.latencyFactor = 3.0;
    EXPECT_NO_THROW(validateFaultSpec(spec));

    spec.kind = FaultKind::StageFailure;
    spec.stage.clear();
    EXPECT_THROW(validateFaultSpec(spec), ModelError);

    spec.kind = FaultKind::SensorDropout;
    spec.sensorDerate = 1.5;
    EXPECT_THROW(validateFaultSpec(spec), ModelError);
    spec.sensorDerate = 1.0;
    EXPECT_NO_THROW(validateFaultSpec(spec));

    // Stage-scoped ceiling derate: needs a stage, a derate in
    // [0, 1] (0 removes the class), and a non-General class.
    spec.kind = FaultKind::StageCeilingDerate;
    spec.stage.clear();
    spec.derate = 0.5;
    EXPECT_THROW(validateFaultSpec(spec), ModelError); // No stage.
    spec.stage = "SLAM";
    spec.derate = -0.1;
    EXPECT_THROW(validateFaultSpec(spec), ModelError);
    spec.derate = 1.5;
    EXPECT_THROW(validateFaultSpec(spec), ModelError);
    spec.derate = 0.0; // Legal: the class is removed outright.
    EXPECT_NO_THROW(validateFaultSpec(spec));
    spec.targetClass = platform::ComputeTarget::General;
    try {
        validateFaultSpec(spec);
        FAIL() << "expected ModelError";
    } catch (const ModelError &e) {
        EXPECT_NE(std::string(e.what()).find("targetClass"),
                  std::string::npos)
            << e.what();
    }
    spec.targetClass = platform::ComputeTarget::Accelerator;

    // Stage-scoped traffic inflation: needs a stage and a factor
    // in [1, 1e6].
    spec.kind = FaultKind::StageTrafficInflation;
    spec.stage.clear();
    EXPECT_THROW(validateFaultSpec(spec), ModelError); // No stage.
    spec.stage = "OctoMap";
    spec.trafficFactor = 0.5;
    EXPECT_THROW(validateFaultSpec(spec), ModelError);
    spec.trafficFactor = 2e6;
    EXPECT_THROW(validateFaultSpec(spec), ModelError);
    spec.trafficFactor = 2.0;
    EXPECT_NO_THROW(validateFaultSpec(spec));
}

TEST(FaultSuite, CatalogCoversEveryLayerAndRejectsUnknownNames)
{
    for (const char *name :
         {"none", "ceiling-derate", "thermal-throttle",
          "stage-failure", "sensor-dropout", "ecc-fallback",
          "cache-contention", "mixed"}) {
        const FaultSuite &suite = findFaultSuite(name);
        EXPECT_EQ(suite.name, name);
        EXPECT_FALSE(suite.description.empty());
    }
    EXPECT_TRUE(findFaultSuite("none").faults.empty());

    try {
        findFaultSuite("mixd");
        FAIL() << "expected ModelError";
    } catch (const ModelError &e) {
        const std::string message = e.what();
        EXPECT_NE(message.find("did you mean"), std::string::npos)
            << message;
        EXPECT_NE(message.find("mixed"), std::string::npos)
            << message;
    }

    EXPECT_STREQ(toString(FaultKind::CeilingDerate),
                 "ceiling-derate");
    EXPECT_STREQ(toString(FaultKind::SensorDropout),
                 "sensor-dropout");
    EXPECT_STREQ(toString(FaultKind::StageCeilingDerate),
                 "stage-ceiling-derate");
    EXPECT_STREQ(toString(FaultKind::StageTrafficInflation),
                 "stage-traffic-inflation");
}

/** A TX2 + DroNet campaign spec loaded with one standard suite. */
CampaignSpec
tx2Campaign(const std::string &suite)
{
    const auto &catalog = components::Catalog::standard();
    const platform::RooflinePlatform &tx2 =
        catalog.rooflines().byName("Nvidia TX2");
    const auto algorithms = workload::annotatedAlgorithms();
    const auto &dronet = algorithms.byName("DroNet");

    CampaignSpec spec;
    spec.nominal = studies::pelicanInputs(units::Hertz(20.0));
    spec.platform = tx2;
    spec.profile = workload::workloadProfile(dronet, tx2);
    spec.workPerFrameGop = dronet.workPerFrameGop();
    spec.faults = findFaultSuite(suite).faults;
    return spec;
}

TEST(FaultCampaign, NoFaultCampaignReproducesTheBaseline)
{
    const FaultCampaign campaign(tx2Campaign("none"));
    const core::F1Analysis baseline = campaign.baseline();
    ASSERT_GT(baseline.safeVelocity.value(), 0.0);

    const CampaignResult result = campaign.run(1000, 7);
    EXPECT_EQ(result.samples, 1000u);
    EXPECT_EQ(result.abortProbability, 0.0);
    // Every sample is the baseline analysis, exactly.
    EXPECT_EQ(result.safeVelocity.p5, baseline.safeVelocity.value());
    EXPECT_EQ(result.safeVelocity.p50,
              baseline.safeVelocity.value());
    EXPECT_EQ(result.safeVelocity.p95,
              baseline.safeVelocity.value());
    // Each sample is byte-identical to the baseline (exact order
    // statistics above); the mean's running sum accumulates a few
    // ulps of rounding over the batch, so it only gets a tolerance.
    EXPECT_NEAR(result.safeVelocity.mean,
                baseline.safeVelocity.value(), 1e-11);
    EXPECT_NEAR(result.safeVelocity.stddev, 0.0, 1e-9);
    // The fault-free binding tally pins the baseline's ceiling.
    ASSERT_FALSE(result.probComputeCeilingBinds.empty());
    double bound_mass = 0.0;
    for (const double p : result.probComputeCeilingBinds)
        bound_mass += p;
    for (const double p : result.probMemoryCeilingBinds)
        bound_mass += p;
    EXPECT_DOUBLE_EQ(bound_mass, 1.0);
}

/** Exact equality across every field of a CampaignResult. */
void
expectBitIdentical(const CampaignResult &a, const CampaignResult &b)
{
    EXPECT_EQ(a.safeVelocity.mean, b.safeVelocity.mean);
    EXPECT_EQ(a.safeVelocity.stddev, b.safeVelocity.stddev);
    EXPECT_EQ(a.safeVelocity.p5, b.safeVelocity.p5);
    EXPECT_EQ(a.safeVelocity.p50, b.safeVelocity.p50);
    EXPECT_EQ(a.safeVelocity.p95, b.safeVelocity.p95);
    EXPECT_EQ(a.abortProbability, b.abortProbability);
    ASSERT_EQ(a.faultActivationRate.size(),
              b.faultActivationRate.size());
    for (std::size_t j = 0; j < a.faultActivationRate.size(); ++j)
        EXPECT_EQ(a.faultActivationRate[j],
                  b.faultActivationRate[j]);
    ASSERT_EQ(a.probComputeCeilingBinds.size(),
              b.probComputeCeilingBinds.size());
    for (std::size_t k = 0; k < a.probComputeCeilingBinds.size();
         ++k)
        EXPECT_EQ(a.probComputeCeilingBinds[k],
                  b.probComputeCeilingBinds[k]);
    ASSERT_EQ(a.probMemoryCeilingBinds.size(),
              b.probMemoryCeilingBinds.size());
    for (std::size_t k = 0; k < a.probMemoryCeilingBinds.size();
         ++k)
        EXPECT_EQ(a.probMemoryCeilingBinds[k],
                  b.probMemoryCeilingBinds[k]);
    ASSERT_EQ(a.stageBindings.size(), b.stageBindings.size());
    for (std::size_t s = 0; s < a.stageBindings.size(); ++s) {
        EXPECT_EQ(a.stageBindings[s].stage, b.stageBindings[s].stage);
        EXPECT_EQ(a.stageBindings[s].probComputeBound,
                  b.stageBindings[s].probComputeBound);
        EXPECT_EQ(a.stageBindings[s].probMemoryBound,
                  b.stageBindings[s].probMemoryBound);
        EXPECT_EQ(a.stageBindings[s].probMeasured,
                  b.stageBindings[s].probMeasured);
    }
    EXPECT_EQ(a.samples, b.samples);
}

TEST(FaultCampaign, FaultedCampaignIsBitIdenticalAcrossThreads)
{
    const FaultCampaign campaign(tx2Campaign("mixed"));

    // Spans many sample blocks so the chunk decomposition is
    // genuinely exercised.
    const std::size_t count = 100000;
    exec::ThreadPool pool1(1);
    exec::ThreadPool pool2(2);
    exec::ThreadPool pool8(8);
    exec::ParallelOptions on1;
    on1.pool = &pool1;
    exec::ParallelOptions on2;
    on2.pool = &pool2;
    exec::ParallelOptions on8;
    on8.pool = &pool8;
    const auto serial = campaign.run(count, 42, on1);
    const auto twoway = campaign.run(count, 42, on2);
    const auto eightway = campaign.run(count, 42, on8);
    expectBitIdentical(serial, twoway);
    expectBitIdentical(serial, eightway);

    // The faults actually fire at their scaled rates...
    ASSERT_EQ(serial.faultActivationRate.size(), 3u);
    EXPECT_NEAR(serial.faultActivationRate[0], 0.2, 0.02);
    EXPECT_NEAR(serial.faultActivationRate[1], 0.15, 0.02);
    // ...and degrade the envelope below the baseline.
    const double baseline =
        campaign.baseline().safeVelocity.value();
    EXPECT_LT(serial.safeVelocity.mean, baseline);
    EXPECT_EQ(serial.safeVelocity.p95, baseline);

    // A different seed must actually change the stream.
    const auto reseeded = campaign.run(count, 43, on8);
    EXPECT_NE(serial.safeVelocity.mean,
              reseeded.safeVelocity.mean);
}

TEST(FaultCampaign, DegradationCurveStartsAtTheBaseline)
{
    const FaultCampaign campaign(tx2Campaign("mixed"));
    const double baseline =
        campaign.baseline().safeVelocity.value();

    exec::ThreadPool pool(4);
    exec::ParallelOptions on_pool;
    on_pool.pool = &pool;
    const auto curve =
        campaign.degradationCurve(5, 2000, 1, on_pool);
    ASSERT_EQ(curve.size(), 5u);
    // Scale 0 disables every fault: the first point is the
    // baseline, exactly.
    EXPECT_EQ(curve.front().scale, 0.0);
    EXPECT_EQ(curve.front().abortProbability, 0.0);
    EXPECT_EQ(curve.front().p5SafeVelocity, baseline);
    EXPECT_EQ(curve.front().p95SafeVelocity, baseline);
    EXPECT_NEAR(curve.front().meanSafeVelocity, baseline, 1e-11);
    // The same seed at every level makes severity the only mover:
    // each sample's active-fault set only grows with scale, so the
    // degraded mean falls monotonically.
    for (std::size_t i = 1; i < curve.size(); ++i) {
        EXPECT_EQ(curve[i].scale,
                  static_cast<double>(i) /
                      static_cast<double>(curve.size() - 1));
        EXPECT_LE(curve[i].meanSafeVelocity,
                  curve[i - 1].meanSafeVelocity + 1e-12);
    }
    EXPECT_LT(curve.back().meanSafeVelocity, baseline);
}

TEST(FaultCampaign, RedundancyAbsorbsAStageFailure)
{
    CampaignSpec spec;
    spec.nominal = studies::pelicanInputs(units::Hertz(20.0));
    spec.pipeline = workload::SpaPipeline::mavbenchPackageDeliveryTx2();
    spec.redundancy = pipeline::RedundancyScheme::Dual;
    FaultSpec slam;
    slam.name = "SLAM dies";
    slam.kind = FaultKind::StageFailure;
    slam.stage = "SLAM";
    slam.probability = 1.0;
    spec.faults = {slam};

    // Dual redundancy: the replica takes over on every sample.
    const FaultCampaign dual(spec);
    const CampaignResult survived = dual.run(100, 3);
    EXPECT_EQ(survived.abortProbability, 0.0);
    EXPECT_GT(survived.safeVelocity.mean, 0.0);

    // No redundancy: the same failure aborts every mission, and
    // the all-aborted distribution stays zeroed.
    spec.redundancy = pipeline::RedundancyScheme::None;
    const FaultCampaign simplex(spec);
    const CampaignResult aborted = simplex.run(100, 3);
    EXPECT_EQ(aborted.abortProbability, 1.0);
    EXPECT_EQ(aborted.safeVelocity.mean, 0.0);
    EXPECT_EQ(aborted.safeVelocity.p95, 0.0);

    // A certain 3x planning slowdown costs throughput but never
    // the mission.
    FaultSpec slow;
    slow.name = "planning slowdown";
    slow.kind = FaultKind::StageLatencyInflation;
    slow.stage = "Path planner";
    slow.latencyFactor = 3.0;
    slow.probability = 1.0;
    spec.faults = {slow};
    const FaultCampaign slowed(spec);
    EXPECT_EQ(slowed.run(100, 3).abortProbability, 0.0);
    EXPECT_LT(slowed.run(100, 3).safeVelocity.mean,
              slowed.baseline().safeVelocity.value());
}

TEST(FaultCampaign, ConstructorRejectsMisconfiguredCampaigns)
{
    // A platform fault without a platform names the fault.
    CampaignSpec no_platform;
    no_platform.nominal = studies::pelicanInputs(units::Hertz(20.0));
    no_platform.faults = findFaultSuite("ceiling-derate").faults;
    try {
        FaultCampaign campaign(no_platform);
        FAIL() << "expected ModelError";
    } catch (const ModelError &e) {
        EXPECT_NE(std::string(e.what()).find("accelerator half peak"),
                  std::string::npos)
            << e.what();
    }

    // A pipeline fault without a pipeline likewise.
    CampaignSpec no_pipeline;
    no_pipeline.nominal = studies::pelicanInputs(units::Hertz(20.0));
    no_pipeline.faults = findFaultSuite("stage-failure").faults;
    EXPECT_THROW(FaultCampaign{no_pipeline}, ModelError);

    // Out-of-range ceiling index.
    CampaignSpec bad_index = tx2Campaign("none");
    FaultSpec derate;
    derate.name = "phantom ceiling";
    derate.kind = FaultKind::CeilingDerate;
    derate.ceilingIndex = 99;
    derate.derate = 0.5;
    derate.probability = 0.1;
    bad_index.faults = {derate};
    EXPECT_THROW(FaultCampaign{bad_index}, ModelError);

    // Unknown stage names surface the pipeline's diagnostic.
    CampaignSpec bad_stage;
    bad_stage.nominal = studies::pelicanInputs(units::Hertz(20.0));
    bad_stage.pipeline = workload::SpaPipeline::mavbenchPackageDeliveryTx2();
    FaultSpec ghost;
    ghost.name = "ghost stage";
    ghost.kind = FaultKind::StageFailure;
    ghost.stage = "Warp";
    ghost.probability = 0.1;
    bad_stage.faults = {ghost};
    EXPECT_THROW(FaultCampaign{bad_stage}, ModelError);

    // Layer cap: nine platform faults overflow the variant table.
    CampaignSpec overflow = tx2Campaign("none");
    for (int i = 0; i < 9; ++i) {
        FaultSpec f;
        f.name = "derate " + std::to_string(i);
        f.kind = FaultKind::CeilingDerate;
        f.ceilingIndex = 0;
        f.derate = 0.9;
        f.probability = 0.1;
        overflow.faults.push_back(f);
    }
    EXPECT_THROW(FaultCampaign{overflow}, ModelError);

    // Negative severity scale.
    CampaignSpec negative = tx2Campaign("none");
    negative.probabilityScale = -1.0;
    EXPECT_THROW(FaultCampaign{negative}, ModelError);

    // run() and degradationCurve() validate their shapes.
    const FaultCampaign campaign(tx2Campaign("mixed"));
    EXPECT_THROW(campaign.run(5), ModelError);
    EXPECT_THROW(campaign.degradationCurve(1, 100), ModelError);
}

/** A TX2-CPU + Navion campaign with the mavbench pipeline: the
 * configuration where the stage-gated accelerator ceiling is in
 * play, so stage-scoped platform faults have a roof to demote. */
CampaignSpec
navionStageCampaign(std::vector<FaultSpec> faults)
{
    const auto &catalog = components::Catalog::standard();
    const platform::RooflinePlatform &navion =
        catalog.rooflines().byName("TX2-CPU + Navion");
    const auto algorithms = workload::annotatedAlgorithms();
    const auto &dronet = algorithms.byName("DroNet");

    CampaignSpec spec;
    spec.nominal = studies::pelicanInputs(units::Hertz(20.0));
    spec.platform = navion;
    spec.profile = workload::workloadProfile(dronet, navion);
    spec.workPerFrameGop = dronet.workPerFrameGop();
    spec.pipeline =
        workload::SpaPipeline::mavbenchPackageDeliveryTx2();
    spec.faults = std::move(faults);
    return spec;
}

/** Index of the first compute ceiling of `target` class. */
std::size_t
ceilingOfClass(const platform::RooflinePlatform &machine,
               platform::ComputeTarget target)
{
    const auto &ceilings = machine.computeCeilings();
    for (std::size_t i = 0; i < ceilings.size(); ++i) {
        if (ceilings[i].target == target)
            return i;
    }
    ADD_FAILURE() << "no ceiling of that class on "
                  << machine.name();
    return 0;
}

TEST(StageScopedFaults, EccFallbackRebindsSlamToTheCpuRoof)
{
    // Evaluator-level: removing the Accelerator class from SLAM's
    // profile demotes the stage from the stage-gated Navion VIO
    // ceiling to the NEON CPU roof, with the latency growing by
    // exactly the roof ratio.
    const auto &catalog = components::Catalog::standard();
    const platform::RooflinePlatform &navion =
        catalog.rooflines().byName("TX2-CPU + Navion");
    const std::size_t accel_index = ceilingOfClass(
        navion, platform::ComputeTarget::Accelerator);
    const std::size_t simd_index =
        ceilingOfClass(navion, platform::ComputeTarget::Simd);

    workload::StagePipelineEvaluator evaluator(
        workload::SpaPipeline::mavbenchPackageDeliveryTx2(), navion);
    std::size_t slam = evaluator.stageCount();
    for (std::size_t s = 0; s < evaluator.stageCount(); ++s) {
        if (evaluator.stageName(s) == "SLAM")
            slam = s;
    }
    ASSERT_LT(slam, evaluator.stageCount());

    workload::StageEvalOptions options;
    options.measuredFirst = false;
    const workload::PipelineBound before = evaluator.evaluate(options);
    ASSERT_TRUE(before.stages[slam].binding.attributed);
    EXPECT_EQ(before.stages[slam].binding.kind,
              platform::CeilingKind::Compute);
    EXPECT_EQ(before.stages[slam].binding.index, accel_index);

    platform::WorkloadProfile profile = evaluator.stageProfile(slam);
    profile.targetDerate[static_cast<unsigned>(
        platform::ComputeTarget::Accelerator)] = 0.0;
    evaluator.overrideStageProfile(slam, profile);
    const workload::PipelineBound after = evaluator.evaluate(options);
    ASSERT_TRUE(after.stages[slam].binding.attributed);
    EXPECT_EQ(after.stages[slam].binding.kind,
              platform::CeilingKind::Compute);
    EXPECT_EQ(after.stages[slam].binding.index, simd_index);
    EXPECT_GT(after.stages[slam].latencySeconds,
              before.stages[slam].latencySeconds);
    // Other stages never see the override.
    for (std::size_t s = 0; s < before.stageCount; ++s) {
        if (s == slam)
            continue;
        EXPECT_EQ(after.stages[s].latencySeconds,
                  before.stages[s].latencySeconds);
    }

    // Campaign-level: the certain ECC fallback degrades the
    // envelope, the SLAM stage stays compute-bound (on the lower
    // roof), and the batched path stays bit-identical to the
    // scalar reference at 1/2/8 threads.
    FaultSpec ecc;
    ecc.name = "SLAM accelerator offline";
    ecc.kind = FaultKind::StageCeilingDerate;
    ecc.probability = 1.0;
    ecc.stage = "SLAM";
    ecc.targetClass = platform::ComputeTarget::Accelerator;
    ecc.derate = 0.0;
    const FaultCampaign faulted(navionStageCampaign({ecc}));
    const FaultCampaign clean(navionStageCampaign({}));

    const std::size_t count = 20011; // Partial kernel + RNG blocks.
    exec::ThreadPool pool1(1);
    exec::ThreadPool pool2(2);
    exec::ThreadPool pool8(8);
    exec::ParallelOptions on1;
    on1.pool = &pool1;
    exec::ParallelOptions on2;
    on2.pool = &pool2;
    exec::ParallelOptions on8;
    on8.pool = &pool8;
    const CampaignResult run1 = faulted.run(count, 42, on1);
    expectBitIdentical(run1, faulted.run(count, 42, on2));
    expectBitIdentical(run1, faulted.run(count, 42, on8));
    expectBitIdentical(run1, faulted.runReference(count, 42, on1));
    expectBitIdentical(run1, faulted.runReference(count, 42, on8));

    EXPECT_EQ(run1.abortProbability, 0.0);
    EXPECT_LT(run1.safeVelocity.mean,
              clean.run(count, 42, on8).safeVelocity.mean);
    ASSERT_EQ(run1.stageBindings.size(), 4u);
    for (const auto &stats : run1.stageBindings) {
        if (stats.stage == "SLAM") {
            EXPECT_EQ(stats.probComputeBound, 1.0);
            EXPECT_EQ(stats.probMeasured, 0.0);
        }
    }
}

TEST(StageScopedFaults, TrafficInflationFlipsAStageToMemoryBound)
{
    // OctoMap on the Navion family is NEON compute-bound at its
    // annotated 0.5 DRAM traffic; a 4x contention spill pushes the
    // DRAM roof below NEON, flipping the stage to memory-bound.
    FaultSpec spill;
    spill.name = "OctoMap voxel spill";
    spill.kind = FaultKind::StageTrafficInflation;
    spill.probability = 1.0;
    spill.stage = "OctoMap";
    spill.ceilingIndex = 0;
    spill.trafficFactor = 4.0;
    const FaultCampaign faulted(navionStageCampaign({spill}));
    const FaultCampaign clean(navionStageCampaign({}));

    const CampaignResult result = faulted.run(4096, 9);
    expectBitIdentical(result, faulted.runReference(4096, 9));
    EXPECT_EQ(result.abortProbability, 0.0);
    bool octomap_checked = false;
    for (const auto &stats : result.stageBindings) {
        if (stats.stage != "OctoMap")
            continue;
        octomap_checked = true;
        EXPECT_EQ(stats.probMemoryBound, 1.0);
        EXPECT_EQ(stats.probComputeBound, 0.0);
    }
    EXPECT_TRUE(octomap_checked);
    EXPECT_LT(result.safeVelocity.mean,
              clean.run(4096, 9).safeVelocity.mean);
}

TEST(StageScopedFaults, AllSamplesAbortWhenTheOnlyRoofIsRemoved)
{
    // The path planner is scalar-only: derating the Scalar class to
    // 0 leaves the stage without any admitted roof, so every sample
    // with the fault active aborts — at probability 1, all of them,
    // through the batched path and the scalar reference alike.
    FaultSpec dead;
    dead.name = "planner scalar unit offline";
    dead.kind = FaultKind::StageCeilingDerate;
    dead.probability = 1.0;
    dead.stage = "Path planner";
    dead.targetClass = platform::ComputeTarget::Scalar;
    dead.derate = 0.0;
    const FaultCampaign campaign(navionStageCampaign({dead}));

    const std::size_t count = 2148; // 2048 + a 100-sample block.
    const CampaignResult result = campaign.run(count, 5);
    expectBitIdentical(result, campaign.runReference(count, 5));
    EXPECT_EQ(result.abortProbability, 1.0);
    EXPECT_EQ(result.safeVelocity.mean, 0.0);
    EXPECT_EQ(result.safeVelocity.p95, 0.0);
    // The campaign itself stays well-formed: the baseline (fault
    // free) is untouched by the removable roof.
    EXPECT_GT(campaign.baseline().safeVelocity.value(), 0.0);
}

TEST(StageScopedFaults, MisconfigurationsAreNamed)
{
    // Stage-scoped platform faults need a pipeline to resolve the
    // stage name against.
    FaultSpec ecc;
    ecc.name = "SLAM accelerator offline";
    ecc.kind = FaultKind::StageCeilingDerate;
    ecc.probability = 0.5;
    ecc.stage = "SLAM";
    ecc.derate = 0.0;
    CampaignSpec no_pipeline = tx2Campaign("none");
    no_pipeline.faults = {ecc};
    try {
        FaultCampaign campaign(no_pipeline);
        FAIL() << "expected ModelError";
    } catch (const ModelError &e) {
        const std::string message = e.what();
        EXPECT_NE(message.find("SLAM accelerator offline"),
                  std::string::npos)
            << message;
        EXPECT_NE(message.find("pipeline"), std::string::npos)
            << message;
    }

    // Unknown stage names surface the pipeline's own diagnostic.
    FaultSpec ghost = ecc;
    ghost.stage = "Warp";
    EXPECT_THROW(FaultCampaign{navionStageCampaign({ghost})},
                 ModelError);

    // A stage without a roofline annotation has no profile to
    // derate.
    CampaignSpec bare = navionStageCampaign({});
    workload::SpaStage plain{"Plain", units::Seconds(0.1)};
    bare.pipeline = workload::SpaPipeline("bare", {plain});
    FaultSpec unreachable = ecc;
    unreachable.stage = "Plain";
    bare.faults = {unreachable};
    try {
        FaultCampaign campaign(bare);
        FAIL() << "expected ModelError";
    } catch (const ModelError &e) {
        EXPECT_NE(std::string(e.what()).find("annotation"),
                  std::string::npos)
            << e.what();
    }

    // Traffic inflation must name a real memory level.
    FaultSpec deep;
    deep.name = "phantom level";
    deep.kind = FaultKind::StageTrafficInflation;
    deep.probability = 0.5;
    deep.stage = "OctoMap";
    deep.ceilingIndex = 7;
    deep.trafficFactor = 2.0;
    try {
        FaultCampaign campaign(navionStageCampaign({deep}));
        FAIL() << "expected ModelError";
    } catch (const ModelError &e) {
        EXPECT_NE(std::string(e.what()).find("phantom level"),
                  std::string::npos)
            << e.what();
    }
}

TEST(StageScopedFaults, DegradationCurveAtScaleZeroAndOne)
{
    FaultSpec ecc;
    ecc.name = "SLAM accelerator ECC half peak";
    ecc.kind = FaultKind::StageCeilingDerate;
    ecc.probability = 0.4;
    ecc.stage = "SLAM";
    ecc.targetClass = platform::ComputeTarget::Accelerator;
    ecc.derate = 0.5;

    // probabilityScale exactly 0: every fault is off at every curve
    // level, so the whole curve is the flat baseline.
    CampaignSpec zeroed = navionStageCampaign({ecc});
    zeroed.probabilityScale = 0.0;
    const FaultCampaign at_zero(zeroed);
    const double baseline =
        at_zero.baseline().safeVelocity.value();
    const auto flat = at_zero.degradationCurve(3, 500, 11);
    ASSERT_EQ(flat.size(), 3u);
    for (const auto &point : flat) {
        EXPECT_EQ(point.abortProbability, 0.0);
        EXPECT_EQ(point.p5SafeVelocity, baseline);
        EXPECT_EQ(point.p95SafeVelocity, baseline);
    }

    // probabilityScale exactly 1: the top curve level reproduces
    // run() at full severity, bit for bit (same seed, same scale).
    CampaignSpec full = navionStageCampaign({ecc});
    full.probabilityScale = 1.0;
    const FaultCampaign at_one(full);
    const auto curve = at_one.degradationCurve(3, 500, 11);
    const CampaignResult top = at_one.run(500, 11);
    ASSERT_EQ(curve.size(), 3u);
    EXPECT_EQ(curve.front().p95SafeVelocity, baseline);
    EXPECT_EQ(curve.back().scale, 1.0);
    EXPECT_EQ(curve.back().meanSafeVelocity, top.safeVelocity.mean);
    EXPECT_EQ(curve.back().p5SafeVelocity, top.safeVelocity.p5);
    EXPECT_EQ(curve.back().p95SafeVelocity, top.safeVelocity.p95);
    EXPECT_EQ(curve.back().abortProbability, top.abortProbability);
}

TEST(StageScopedFaults, StandardSuitesRunBitIdenticalAcrossThreads)
{
    exec::ThreadPool pool1(1);
    exec::ThreadPool pool2(2);
    exec::ThreadPool pool8(8);
    exec::ParallelOptions on1;
    on1.pool = &pool1;
    exec::ParallelOptions on2;
    on2.pool = &pool2;
    exec::ParallelOptions on8;
    on8.pool = &pool8;
    for (const char *suite : {"ecc-fallback", "cache-contention"}) {
        const FaultCampaign campaign(
            navionStageCampaign(findFaultSuite(suite).faults));
        // Spans two full RNG blocks plus a >64-sample partial block
        // (2148 = 2048 + 100 = 2048 + 64 + 36), so partial kernel
        // sub-blocks run through the batch path at every thread
        // count.
        const std::size_t count = 4196;
        const CampaignResult serial = campaign.run(count, 17, on1);
        expectBitIdentical(serial, campaign.run(count, 17, on2));
        expectBitIdentical(serial, campaign.run(count, 17, on8));
        expectBitIdentical(serial,
                           campaign.runReference(count, 17, on1));
        expectBitIdentical(serial,
                           campaign.runReference(count, 17, on8));
        EXPECT_LT(serial.safeVelocity.mean,
                  campaign.baseline().safeVelocity.value());
    }
}

} // namespace
