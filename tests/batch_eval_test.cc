/**
 * @file
 * Bit-identity property tests for the batched SoA evaluation layer:
 * platform::EvaluationPlan vs RooflinePlatform::attainable(),
 * workload::StagePipelinePlan vs StagePipelineEvaluator, the
 * core::analyze*Block kernels vs F1Model::analyzeInto(), the
 * Monte-Carlo / fault-campaign run() vs runReference() oracles at
 * 1/2/8 threads, the batched design-space sweep vs per-point
 * analyze(), the allocation-free guarantee of the kernels, and the
 * exec::parallelForSlots / suggestedGrain contracts they ride on.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <mutex>
#include <new>
#include <set>
#include <string>
#include <vector>

#include "components/catalog.hh"
#include "core/f1_batch.hh"
#include "core/f1_model.hh"
#include "exec/parallel.hh"
#include "exec/thread_pool.hh"
#include "fault/campaign.hh"
#include "fault/fault_spec.hh"
#include "platform/evaluation_plan.hh"
#include "sim/monte_carlo.hh"
#include "skyline/dse.hh"
#include "studies/presets.hh"
#include "support/rng.hh"
#include "workload/algorithm.hh"
#include "workload/batch_eval.hh"
#include "workload/spa_pipeline.hh"
#include "workload/stage_eval.hh"
#include "workload/throughput.hh"

/** Global allocation counter backing the zero-allocation tests. */
std::atomic<std::size_t> g_heap_allocations{0};

void *
operator new(std::size_t size)
{
    g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

using namespace uavf1;

const platform::RooflinePlatform &
preset(const std::string &name)
{
    static const auto catalog = components::Catalog::standard();
    return catalog.rooflines().byName(name);
}

/** Flat ceiling slot of a scalar binding, as the plans encode it. */
std::uint32_t
flatSlot(const platform::CeilingRef &binding,
         std::size_t compute_ceilings)
{
    return static_cast<std::uint32_t>(
        binding.kind == platform::CeilingKind::Compute
            ? binding.index
            : compute_ceilings + binding.index);
}

TEST(EvaluationPlan, MatchesScalarAttainableEverywhere)
{
    const auto algorithms = workload::annotatedAlgorithms();
    const char *platforms[] = {"Nvidia TX2", "Nvidia AGX",
                               "ARM Cortex-M4", "TX2-CPU + Navion"};
    const char *annotated[] = {"DroNet", "DroNet (scalar-only)",
                               "SPA package delivery"};

    Rng rng(42);
    for (const char *platform_name : platforms) {
        const platform::RooflinePlatform &machine =
            preset(platform_name);

        std::vector<platform::WorkloadProfile> profiles;
        profiles.push_back({}); // Unannotated: every ceiling.
        for (const char *algorithm_name : annotated) {
            profiles.push_back(workload::workloadProfile(
                algorithms.byName(algorithm_name), machine));
        }

        for (platform::WorkloadProfile profile : profiles) {
            profile.ai = units::OpsPerByte(1.0);
            const platform::EvaluationPlan plan(machine, profile);
            ASSERT_EQ(plan.operatingPointCount(),
                      machine.operatingPoints().size());

            // AI draws spanning memory-bound through compute-bound
            // regimes, plus the knee-adjacent values where tie rules
            // matter.
            double ai[67];
            std::size_t n = 0;
            for (; n < 64; ++n)
                ai[n] = rng.uniform(0.01, 80.0);
            ai[n++] = 22.3; // TX2 machine knee.
            ai[n++] = 1e-3;
            ai[n++] = 1e6;

            double attainable[67];
            std::uint32_t slot[67];
            for (std::size_t op = 0;
                 op < plan.operatingPointCount(); ++op) {
                plan.evaluateBlock(op, ai, n, attainable, slot);
                for (std::size_t i = 0; i < n; ++i) {
                    platform::WorkloadProfile sample = profile;
                    sample.ai = units::OpsPerByte(ai[i]);
                    const platform::AttainableBound scalar =
                        machine.attainable(sample, op);
                    EXPECT_EQ(attainable[i],
                              scalar.attainable.value())
                        << platform_name << " op " << op << " ai "
                        << ai[i];
                    ASSERT_TRUE(scalar.binding.attributed);
                    EXPECT_EQ(slot[i],
                              flatSlot(scalar.binding,
                                       machine.computeCeilings()
                                           .size()))
                        << platform_name << " op " << op << " ai "
                        << ai[i];
                }
            }
        }
    }
}

TEST(EvaluationPlan, RejectsBadSamplesWithTheScalarError)
{
    const platform::RooflinePlatform &tx2 = preset("Nvidia TX2");
    platform::WorkloadProfile profile;
    profile.ai = units::OpsPerByte(1.0);
    const platform::EvaluationPlan plan(tx2, profile);

    double ai[3] = {1.0, -2.0, 3.0};
    double attainable[3];
    std::uint32_t slot[3];
    EXPECT_FALSE(plan.tryEvaluateBlock(0, ai, 3, attainable, slot));
    EXPECT_THROW(plan.evaluateBlock(0, ai, 3, attainable, slot),
                 ModelError);
    // Out-of-range operating point fails like the scalar call.
    ai[1] = 2.0;
    EXPECT_THROW(plan.evaluateBlock(99, ai, 3, attainable, slot),
                 ModelError);
    EXPECT_NO_THROW(plan.evaluateBlock(0, ai, 3, attainable, slot));
}

TEST(StagePipelinePlan, MatchesScalarEvaluator)
{
    const workload::SpaPipeline pipeline =
        workload::SpaPipeline::mavbenchPackageDeliveryTx2();
    Rng rng(7);
    for (const char *platform_name :
         {"Nvidia TX2", "TX2-CPU + Navion"}) {
        const platform::RooflinePlatform &machine =
            preset(platform_name);
        const workload::StagePipelinePlan plan(pipeline, machine);
        const workload::StagePipelineEvaluator evaluator(pipeline,
                                                         machine);
        const std::size_t stages = plan.stageCount();
        const std::size_t compute_ceilings =
            plan.computeCeilingCount();

        workload::StagePipelinePlan::Scratch scratch;
        double ai_scale[64];
        double throughput[64];
        std::uint32_t bottleneck[64];
        for (std::size_t op = 0;
             op < machine.operatingPoints().size(); ++op) {
            for (const bool measured_first : {true, false}) {
                const std::size_t n = 61; // Partial block.
                for (std::size_t i = 0; i < n; ++i)
                    ai_scale[i] = std::exp(rng.normal(0.0, 0.4));

                std::vector<std::uint64_t> kinds(stages * 3, 0);
                plan.evaluateBlock(op, measured_first, ai_scale, n,
                                   throughput, bottleneck,
                                   kinds.data(), scratch);

                std::vector<std::uint64_t> expected_kinds(
                    stages * 3, 0);
                workload::PipelineBound bound;
                for (std::size_t i = 0; i < n; ++i) {
                    workload::StageEvalOptions options;
                    options.opIndex = op;
                    options.measuredFirst = measured_first;
                    options.aiScale = ai_scale[i];
                    evaluator.evaluateInto(options, bound);

                    EXPECT_EQ(throughput[i], bound.throughputHz)
                        << platform_name << " op " << op;
                    const platform::CeilingRef bottleneck_binding =
                        bound.bottleneckBinding();
                    const std::uint32_t expected_slot =
                        bottleneck_binding.attributed
                            ? flatSlot(bottleneck_binding,
                                       compute_ceilings)
                            : workload::StagePipelinePlan::
                                  measuredSlot;
                    EXPECT_EQ(bottleneck[i], expected_slot)
                        << platform_name << " op " << op;

                    for (std::size_t s = 0; s < stages; ++s) {
                        const workload::StageBound &stage =
                            bound.stages[s];
                        const std::size_t kind =
                            stage.binding.attributed
                                ? (stage.binding.kind ==
                                           platform::CeilingKind::
                                               Compute
                                       ? 0
                                       : 1)
                                : 2;
                        ++expected_kinds[s * 3 + kind];
                    }
                }
                EXPECT_EQ(kinds, expected_kinds)
                    << platform_name << " op " << op
                    << " measured_first " << measured_first;
            }
        }
    }
}

TEST(StagePipelinePlan, ExtremeScalesCrossTheFastIntervalExactly)
{
    // The plan's whole-block fast path covers an interval of AI
    // scales; sweep uniform-scale blocks across nine orders of
    // magnitude (plus mixed blocks) so both sides of every
    // bisected threshold — compute-bound, memory-bound, and the
    // handoff between them — are compared against the scalar
    // evaluator.
    const workload::SpaPipeline pipeline =
        workload::SpaPipeline::mavbenchPackageDeliveryTx2();
    for (const char *platform_name :
         {"Nvidia TX2", "TX2-CPU + Navion"}) {
        const platform::RooflinePlatform &machine =
            preset(platform_name);
        const workload::StagePipelinePlan plan(pipeline, machine);
        const workload::StagePipelineEvaluator evaluator(pipeline,
                                                         machine);
        const std::size_t stages = plan.stageCount();
        workload::StagePipelinePlan::Scratch scratch;
        workload::PipelineBound bound;

        std::vector<double> scales;
        for (double mag = 1e-4; mag <= 1e5; mag *= 10.0)
            for (double step : {1.0, 1.9, 3.7, 7.3})
                scales.push_back(mag * step);

        double ai_scale[64];
        double throughput[64];
        std::uint32_t slot[64];
        const auto compare = [&](std::size_t n, std::size_t op) {
            std::vector<std::uint64_t> kinds(stages * 3, 0);
            plan.evaluateBlock(op, false, ai_scale, n, throughput,
                               slot, kinds.data(), scratch);
            std::vector<std::uint64_t> expected(stages * 3, 0);
            for (std::size_t i = 0; i < n; ++i) {
                workload::StageEvalOptions options;
                options.opIndex = op;
                options.measuredFirst = false;
                options.aiScale = ai_scale[i];
                evaluator.evaluateInto(options, bound);
                EXPECT_EQ(throughput[i], bound.throughputHz)
                    << platform_name << " scale " << ai_scale[i];
                for (std::size_t s = 0; s < stages; ++s) {
                    const workload::StageBound &stage =
                        bound.stages[s];
                    const std::size_t kind =
                        stage.binding.attributed
                            ? (stage.binding.kind ==
                                       platform::CeilingKind::Compute
                                   ? 0
                                   : 1)
                            : 2;
                    ++expected[s * 3 + kind];
                }
            }
            EXPECT_EQ(kinds, expected) << platform_name;
        };

        for (std::size_t op = 0;
             op < machine.operatingPoints().size(); ++op) {
            // Uniform-scale blocks: whole block on one side.
            for (const double scale : scales) {
                for (std::size_t i = 0; i < 8; ++i)
                    ai_scale[i] = scale;
                compare(8, op);
            }
            // Mixed block: one out-of-interval sample must push
            // the whole block down the general path.
            for (std::size_t i = 0; i < 16; ++i)
                ai_scale[i] = 1.0 + 0.01 * static_cast<double>(i);
            ai_scale[11] = 1e-4;
            compare(16, op);
        }
    }
}

TEST(StagePipelinePlan, BadAiScaleFallsBackToTheScalarError)
{
    const workload::StagePipelinePlan plan(
        workload::SpaPipeline::mavbenchPackageDeliveryTx2(),
        preset("TX2-CPU + Navion"));
    workload::StagePipelinePlan::Scratch scratch;
    double ai_scale[3] = {1.0, 0.0, 1.0};
    double throughput[3];
    std::uint32_t bottleneck[3];
    std::uint64_t kinds[4 * 3] = {0};
    EXPECT_FALSE(plan.tryEvaluateBlock(0, false, ai_scale, 3,
                                       throughput, bottleneck, kinds,
                                       scratch));
    EXPECT_THROW(plan.evaluateBlock(0, false, ai_scale, 3,
                                    throughput, bottleneck, kinds,
                                    scratch),
                 ModelError);
}

TEST(F1Batch, KernelsMatchAnalyzeIntoBitForBit)
{
    Rng rng(11);
    constexpr std::size_t n = 64;
    double a_max[n], range[n], sensor[n], compute[n];
    core::F1Inputs inputs[n];
    for (std::size_t i = 0; i < n; ++i) {
        a_max[i] = rng.uniform(0.5, 30.0);
        range[i] = rng.uniform(0.5, 50.0);
        sensor[i] = rng.uniform(1.0, 300.0);
        compute[i] = rng.uniform(1.0, 300.0);
        inputs[i].aMax = units::MetersPerSecondSquared(a_max[i]);
        inputs[i].sensingRange = units::Meters(range[i]);
        inputs[i].sensorRate = units::Hertz(sensor[i]);
        inputs[i].computeRate = units::Hertz(compute[i]);
        inputs[i].controlRate = units::Hertz(200.0);
        inputs[i].kneeFraction = 0.98;
    }

    double v_safe[n], knee[n], roof[n];
    std::uint8_t bound[n];
    ASSERT_TRUE(core::analyzeBlock(a_max, range, sensor, compute,
                                   200.0, 0.98, n, v_safe, knee,
                                   roof, bound));
    double v_only[n];
    core::F1Analysis full[n];
    core::analyzeFullBlock(inputs, full, n);

    core::F1Analysis scalar;
    for (std::size_t i = 0; i < n; ++i) {
        core::F1Model::analyzeInto(inputs[i], scalar);
        EXPECT_EQ(v_safe[i], scalar.safeVelocity.value());
        EXPECT_EQ(knee[i], scalar.kneeThroughput.value());
        EXPECT_EQ(roof[i], scalar.roofVelocity.value());
        EXPECT_EQ(bound[i],
                  static_cast<std::uint8_t>(scalar.bound));
        EXPECT_EQ(full[i].safeVelocity.value(),
                  scalar.safeVelocity.value());
        EXPECT_EQ(full[i].bound, scalar.bound);
        EXPECT_EQ(full[i].kneeVelocity.value(),
                  scalar.kneeVelocity.value());
        EXPECT_EQ(full[i].verdict, scalar.verdict);
    }

    // Constant-physics variant against the same scalars.
    for (std::size_t i = 0; i < n; ++i) {
        inputs[i].aMax = units::MetersPerSecondSquared(6.0);
        inputs[i].sensingRange = units::Meters(4.5);
    }
    ASSERT_TRUE(core::analyzeVSafeBlock(6.0, 4.5, sensor, compute,
                                        200.0, n, v_only));
    for (std::size_t i = 0; i < n; ++i) {
        core::F1Model::analyzeInto(inputs[i], scalar);
        EXPECT_EQ(v_only[i], scalar.safeVelocity.value());
    }

    // Invalid samples flip the flag instead of throwing.
    sensor[13] = 0.0;
    EXPECT_FALSE(core::analyzeBlock(a_max, range, sensor, compute,
                                    200.0, 0.98, n, v_safe, knee,
                                    roof, bound));
    EXPECT_FALSE(core::analyzeVSafeBlock(6.0, 4.5, sensor, compute,
                                         200.0, n, v_only));
}

/** Exact equality over every field the samplers report. */
void
expectIdentical(const sim::UncertaintyResult &a,
                const sim::UncertaintyResult &b)
{
    EXPECT_EQ(a.samples, b.samples);
    const auto expect_dist = [](const sim::Distribution &x,
                                const sim::Distribution &y) {
        EXPECT_EQ(x.mean, y.mean);
        EXPECT_EQ(x.stddev, y.stddev);
        EXPECT_EQ(x.p5, y.p5);
        EXPECT_EQ(x.p50, y.p50);
        EXPECT_EQ(x.p95, y.p95);
    };
    expect_dist(a.safeVelocity, b.safeVelocity);
    expect_dist(a.kneeThroughput, b.kneeThroughput);
    expect_dist(a.roofVelocity, b.roofVelocity);
    EXPECT_EQ(a.probComputeBound, b.probComputeBound);
    EXPECT_EQ(a.probSensorBound, b.probSensorBound);
    EXPECT_EQ(a.probControlBound, b.probControlBound);
    EXPECT_EQ(a.probPhysicsBound, b.probPhysicsBound);
    EXPECT_EQ(a.probComputeCeilingBinds, b.probComputeCeilingBinds);
    EXPECT_EQ(a.probMemoryCeilingBinds, b.probMemoryCeilingBinds);
    ASSERT_EQ(a.stageBindings.size(), b.stageBindings.size());
    for (std::size_t s = 0; s < a.stageBindings.size(); ++s) {
        EXPECT_EQ(a.stageBindings[s].stage, b.stageBindings[s].stage);
        EXPECT_EQ(a.stageBindings[s].probComputeBound,
                  b.stageBindings[s].probComputeBound);
        EXPECT_EQ(a.stageBindings[s].probMemoryBound,
                  b.stageBindings[s].probMemoryBound);
        EXPECT_EQ(a.stageBindings[s].probMeasured,
                  b.stageBindings[s].probMeasured);
    }
}

/** The three Monte-Carlo evaluation paths under stress. */
std::vector<sim::UncertaintySpec>
monteCarloSpecs()
{
    std::vector<sim::UncertaintySpec> specs;

    sim::UncertaintySpec legacy;
    legacy.nominal = studies::pelicanInputs(units::Hertz(55.0));
    specs.push_back(legacy);

    // Flat platform path with the AI spread straddling the machine
    // knee, so the binding ceiling varies sample to sample.
    sim::UncertaintySpec flat;
    flat.nominal = studies::pelicanInputs(units::Hertz(55.0));
    flat.platform = preset("Nvidia TX2");
    flat.profile.ai = units::OpsPerByte(22.3);
    flat.workPerFrameGop = 0.04;
    flat.aiRelStd = 0.4;
    specs.push_back(flat);

    // Per-stage pipeline path on the accelerator family.
    sim::UncertaintySpec staged;
    staged.nominal = studies::pelicanInputs(units::Hertz(20.0));
    staged.platform = preset("TX2-CPU + Navion");
    staged.pipeline =
        workload::SpaPipeline::mavbenchPackageDeliveryTx2();
    staged.aiRelStd = 0.10;
    staged.computeRelStd = 0.05;
    specs.push_back(staged);

    return specs;
}

TEST(MonteCarloBatch, RunMatchesReferenceAtEveryThreadCount)
{
    exec::ThreadPool pool(8);
    // An odd count exercises partial kernel blocks and a partial
    // trailing RNG block.
    const std::size_t count = 5003;
    for (const sim::UncertaintySpec &spec : monteCarloSpecs()) {
        const sim::MonteCarloAnalyzer analyzer(spec);
        const sim::UncertaintyResult reference =
            analyzer.runReference(count, 9);
        for (const std::size_t threads : {1u, 2u, 8u}) {
            exec::ParallelOptions options;
            options.pool = &pool;
            options.maxThreads = threads;
            expectIdentical(reference,
                            analyzer.run(count, 9, options));
        }
    }
}

/** Exact equality over every field the campaign reports. */
void
expectIdentical(const fault::CampaignResult &a,
                const fault::CampaignResult &b)
{
    EXPECT_EQ(a.samples, b.samples);
    EXPECT_EQ(a.abortProbability, b.abortProbability);
    EXPECT_EQ(a.faultActivationRate, b.faultActivationRate);
    EXPECT_EQ(a.safeVelocity.mean, b.safeVelocity.mean);
    EXPECT_EQ(a.safeVelocity.stddev, b.safeVelocity.stddev);
    EXPECT_EQ(a.safeVelocity.p5, b.safeVelocity.p5);
    EXPECT_EQ(a.safeVelocity.p50, b.safeVelocity.p50);
    EXPECT_EQ(a.safeVelocity.p95, b.safeVelocity.p95);
    EXPECT_EQ(a.probComputeCeilingBinds, b.probComputeCeilingBinds);
    EXPECT_EQ(a.probMemoryCeilingBinds, b.probMemoryCeilingBinds);
    ASSERT_EQ(a.stageBindings.size(), b.stageBindings.size());
    for (std::size_t s = 0; s < a.stageBindings.size(); ++s) {
        EXPECT_EQ(a.stageBindings[s].probComputeBound,
                  b.stageBindings[s].probComputeBound);
        EXPECT_EQ(a.stageBindings[s].probMemoryBound,
                  b.stageBindings[s].probMemoryBound);
        EXPECT_EQ(a.stageBindings[s].probMeasured,
                  b.stageBindings[s].probMeasured);
    }
}

/** A TX2 + DroNet campaign spec loaded with one standard suite. */
fault::CampaignSpec
tx2Campaign(const std::string &suite)
{
    const auto &catalog = components::Catalog::standard();
    const platform::RooflinePlatform &tx2 = preset("Nvidia TX2");
    const auto algorithms = workload::annotatedAlgorithms();
    const auto &dronet = algorithms.byName("DroNet");

    fault::CampaignSpec spec;
    spec.nominal = studies::pelicanInputs(units::Hertz(20.0));
    spec.platform = tx2;
    spec.profile = workload::workloadProfile(dronet, tx2);
    spec.workPerFrameGop = dronet.workPerFrameGop();
    spec.faults = fault::findFaultSuite(suite).faults;
    (void)catalog;
    return spec;
}

/** Campaign specs covering every layer combination. */
std::vector<fault::CampaignSpec>
campaignSpecs()
{
    std::vector<fault::CampaignSpec> specs;
    for (const char *suite : {"ceiling-derate", "thermal-throttle",
                              "sensor-dropout", "mixed"})
        specs.push_back(tx2Campaign(suite));

    // Pipeline-only.
    fault::CampaignSpec staged;
    staged.nominal = studies::pelicanInputs(units::Hertz(20.0));
    staged.pipeline =
        workload::SpaPipeline::mavbenchPackageDeliveryTx2();
    staged.redundancy = pipeline::RedundancyScheme::Dual;
    staged.faults = fault::findFaultSuite("stage-failure").faults;
    specs.push_back(staged);

    // Combined platform + pipeline + sensor: every layer at once,
    // exercising the per-stage path's pair tables.
    fault::CampaignSpec combined = staged;
    const auto algorithms = workload::annotatedAlgorithms();
    const auto &spa = algorithms.byName("SPA package delivery");
    const platform::RooflinePlatform &tx2 = preset("Nvidia TX2");
    combined.platform = tx2;
    combined.profile = workload::workloadProfile(spa, tx2);
    combined.workPerFrameGop = spa.workPerFrameGop();
    for (const fault::FaultSpec &fault :
         fault::findFaultSuite("mixed").faults)
        combined.faults.push_back(fault);
    specs.push_back(combined);

    return specs;
}

TEST(CampaignBatch, RunMatchesReferenceAtEveryThreadCount)
{
    exec::ThreadPool pool(8);
    const std::size_t count = 4111;
    for (const fault::CampaignSpec &spec : campaignSpecs()) {
        const fault::FaultCampaign campaign(spec);
        const fault::CampaignResult reference =
            campaign.runReference(count, 13);
        for (const std::size_t threads : {1u, 2u, 8u}) {
            exec::ParallelOptions options;
            options.pool = &pool;
            options.maxThreads = threads;
            expectIdentical(reference,
                            campaign.run(count, 13, options));
        }
    }
}

TEST(CampaignBatch, DegradationCurveRidesTheBatchedRuns)
{
    const fault::FaultCampaign campaign(tx2Campaign("mixed"));
    const auto curve = campaign.degradationCurve(4, 600, 17);
    ASSERT_EQ(curve.size(), 4u);

    // Each level is run() on a severity-scaled spec; pin it against
    // the reference oracle of the same scaled campaign.
    for (std::size_t level = 0; level < curve.size(); ++level) {
        fault::CampaignSpec scaled = tx2Campaign("mixed");
        scaled.probabilityScale =
            static_cast<double>(level) /
            static_cast<double>(curve.size() - 1);
        const fault::FaultCampaign scaled_campaign(scaled);
        const fault::CampaignResult reference =
            scaled_campaign.runReference(600, 17);
        EXPECT_EQ(curve[level].meanSafeVelocity,
                  reference.safeVelocity.mean);
        EXPECT_EQ(curve[level].p5SafeVelocity,
                  reference.safeVelocity.p5);
        EXPECT_EQ(curve[level].p95SafeVelocity,
                  reference.safeVelocity.p95);
        EXPECT_EQ(curve[level].abortProbability,
                  reference.abortProbability);
    }
}

TEST(Kernels, BlockEvaluationIsAllocationFree)
{
    const platform::RooflinePlatform &tx2 = preset("Nvidia TX2");
    platform::WorkloadProfile profile;
    profile.ai = units::OpsPerByte(1.0);
    const platform::EvaluationPlan plan(tx2, profile);
    const workload::StagePipelinePlan stage_plan(
        workload::SpaPipeline::mavbenchPackageDeliveryTx2(),
        preset("TX2-CPU + Navion"));

    constexpr std::size_t n = 64;
    double ai[n], ai_scale[n], attainable[n], throughput[n];
    double sensor[n], compute[n], v_safe[n], knee[n], roof[n];
    std::uint32_t slot[n], bottleneck[n];
    std::uint8_t bound[n];
    std::uint64_t kinds[4 * 3] = {0};
    workload::StagePipelinePlan::Scratch scratch;
    for (std::size_t i = 0; i < n; ++i) {
        ai[i] = 1.0 + 0.25 * static_cast<double>(i);
        ai_scale[i] = 0.5 + 0.01 * static_cast<double>(i);
        sensor[i] = 30.0 + static_cast<double>(i);
        compute[i] = 20.0 + static_cast<double>(i);
    }

    // Warm-up (first call may fault in lazily-initialized state).
    plan.evaluateBlock(0, ai, n, attainable, slot);
    stage_plan.evaluateBlock(0, false, ai_scale, n, throughput,
                             bottleneck, kinds, scratch);

    const std::size_t before =
        g_heap_allocations.load(std::memory_order_relaxed);
    for (int iter = 0; iter < 16; ++iter) {
        plan.evaluateBlock(0, ai, n, attainable, slot);
        stage_plan.evaluateBlock(0, false, ai_scale, n, throughput,
                                 bottleneck, kinds, scratch);
        core::analyzeBlock(ai, ai_scale, sensor, compute, 200.0,
                           0.98, n, v_safe, knee, roof, bound);
        core::analyzeVSafeBlock(6.0, 4.5, sensor, compute, 200.0, n,
                                v_safe);
    }
    const std::size_t after =
        g_heap_allocations.load(std::memory_order_relaxed);
    EXPECT_EQ(after, before)
        << "block kernels must not allocate on the hot path";
}

TEST(Exec, ParallelForSlotsCoversEveryIndexWithBoundedSlots)
{
    exec::ThreadPool pool(4);
    exec::ParallelOptions options;
    options.pool = &pool;
    options.grain = 8;
    const std::size_t slots = exec::maxSlots(options);
    EXPECT_GE(slots, 1u);
    EXPECT_LE(slots, 4u);

    constexpr std::size_t count = 1000;
    std::vector<std::atomic<int>> visits(count);
    std::mutex mutex;
    std::set<std::size_t> seen_slots;
    exec::parallelForSlots(
        count,
        [&](std::size_t slot, std::size_t begin, std::size_t end) {
            ASSERT_LT(slot, slots);
            {
                const std::lock_guard<std::mutex> lock(mutex);
                seen_slots.insert(slot);
            }
            for (std::size_t i = begin; i < end; ++i)
                visits[i].fetch_add(1, std::memory_order_relaxed);
        },
        options);
    for (std::size_t i = 0; i < count; ++i)
        EXPECT_EQ(visits[i].load(), 1) << i;
    EXPECT_GE(seen_slots.size(), 1u);

    // maxThreads caps the slot space.
    options.maxThreads = 1;
    EXPECT_EQ(exec::maxSlots(options), 1u);
    exec::parallelForSlots(
        64,
        [&](std::size_t slot, std::size_t, std::size_t) {
            EXPECT_EQ(slot, 0u);
        },
        options);
}

TEST(Exec, SuggestedGrainIsThreadIndependentAndBounded)
{
    // Pure function of (count, cost): no thread-count input at all,
    // so chunk geometry can never depend on the machine.
    const std::size_t g = exec::suggestedGrain(1u << 20, 100.0);
    EXPECT_EQ(g, exec::suggestedGrain(1u << 20, 100.0));
    EXPECT_GE(g, 1u);

    // Cheap work gets big chunks, expensive work small ones.
    EXPECT_GT(exec::suggestedGrain(1u << 20, 1.0),
              exec::suggestedGrain(1u << 20, 10000.0));
    // Never exceeds the loop itself.
    EXPECT_LE(exec::suggestedGrain(10, 1.0), 10u);
    EXPECT_GE(exec::suggestedGrain(0, 1.0), 1u);
}

TEST(DseBatch, SweepMatchesPerPointAnalyze)
{
    const auto catalog = components::Catalog::standard();
    const auto algorithms = workload::standardAlgorithms();
    core::UavConfig::Builder prototype("dse");
    prototype
        .airframe(catalog.airframes().byName("AscTec Pelican"))
        .sensor(catalog.sensors().byName("RGB-D 60FPS (4.5m)"));
    const skyline::DesignSpaceExplorer dse(prototype);

    const std::vector<components::ComputePlatform> computes = {
        catalog.computes().byName("Nvidia TX2"),
        catalog.computes().byName("Intel NCS"),
        catalog.computes().byName("Ras-Pi4"),
        catalog.computes().byName("Nvidia AGX")};
    const std::vector<workload::AutonomyAlgorithm> algos = {
        algorithms.byName("DroNet"),
        algorithms.byName("TrailNet")};

    const auto points = dse.sweep(computes, algos);
    ASSERT_EQ(points.size(), computes.size() * algos.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto &point = points[i];
        if (!point.feasible) {
            EXPECT_FALSE(point.infeasibleReason.empty());
            continue;
        }
        // Rebuild the config and compare the batched analysis with
        // the scalar per-point call, field for field.
        core::UavConfig::Builder builder = prototype;
        const core::UavConfig config =
            builder.compute(computes[i / algos.size()])
                .algorithm(algos[i % algos.size()])
                .build();
        const core::F1Analysis scalar = config.f1Model().analyze();
        EXPECT_EQ(point.analysis.safeVelocity.value(),
                  scalar.safeVelocity.value());
        EXPECT_EQ(point.analysis.kneeThroughput.value(),
                  scalar.kneeThroughput.value());
        EXPECT_EQ(point.analysis.roofVelocity.value(),
                  scalar.roofVelocity.value());
        EXPECT_EQ(point.analysis.bound, scalar.bound);
        EXPECT_EQ(point.analysis.verdict, scalar.verdict);
        EXPECT_EQ(point.safeVelocity, scalar.safeVelocity.value());
    }
}

} // namespace
