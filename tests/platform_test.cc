/**
 * @file
 * Unit tests for the platform layer: the multi-ceiling
 * RooflinePlatform, DVFS operating points, the single-ceiling
 * ComputePlatform adapter, the catalog presets, and the ceiling
 * attribution pass-through in the F-1 hot path.
 */

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <type_traits>

#include "components/catalog.hh"
#include "core/f1_model.hh"
#include "platform/roofline_platform.hh"
#include "plot/roofline_chart.hh"
#include "studies/presets.hh"
#include "support/errors.hh"
#include "workload/dvfs.hh"
#include "workload/throughput.hh"

namespace {

using namespace uavf1;
using namespace uavf1::units;
using namespace uavf1::platform;

/** A TX2-flavoured two-by-two family used across the tests. */
RooflinePlatform::Spec
familySpec()
{
    RooflinePlatform::Spec spec;
    spec.name = "family";
    spec.computeCeilings = {{"scalar", Gops(40.0),
                             ComputeTarget::Scalar, {}},
                            {"GPU", Gops(1000.0),
                             ComputeTarget::Accelerator, {}}};
    spec.memoryCeilings = {{"DRAM", GigabytesPerSecond(60.0)},
                           {"on-chip", GigabytesPerSecond(300.0)}};
    spec.operatingPoints = {{"nominal", 1.0, Watts(10.0)},
                            {"half", 0.5, Watts(3.0)}};
    return spec;
}

TEST(RooflinePlatform, ValidatesSpec)
{
    RooflinePlatform::Spec spec = familySpec();
    spec.name.clear();
    EXPECT_THROW(RooflinePlatform{spec}, ModelError);

    spec = familySpec();
    spec.computeCeilings.clear();
    EXPECT_THROW(RooflinePlatform{spec}, ModelError);

    spec = familySpec();
    spec.memoryCeilings.clear();
    EXPECT_THROW(RooflinePlatform{spec}, ModelError);

    spec = familySpec();
    spec.computeCeilings[0].peak = Gops(0.0);
    EXPECT_THROW(RooflinePlatform{spec}, ModelError);

    spec = familySpec();
    spec.memoryCeilings[1].bandwidth = GigabytesPerSecond(-1.0);
    EXPECT_THROW(RooflinePlatform{spec}, ModelError);

    spec = familySpec();
    spec.operatingPoints[1].frequencyFraction = 1.5;
    EXPECT_THROW(RooflinePlatform{spec}, ModelError);

    spec = familySpec();
    spec.operatingPoints[1].frequencyFraction = 0.0;
    EXPECT_THROW(RooflinePlatform{spec}, ModelError);
}

TEST(RooflinePlatform, DefaultsToANominalOperatingPoint)
{
    RooflinePlatform::Spec spec = familySpec();
    spec.operatingPoints.clear();
    const RooflinePlatform machine{spec};
    ASSERT_EQ(machine.operatingPoints().size(), 1u);
    EXPECT_EQ(machine.operatingPoints()[0].name, "nominal");
    EXPECT_DOUBLE_EQ(machine.operatingPoints()[0].frequencyFraction,
                     1.0);
}

TEST(RooflinePlatform, AttributesTheBindingCeiling)
{
    const RooflinePlatform machine{familySpec()};

    // High AI: the best compute roof binds (GPU, index 1).
    const AttainableBound compute_bound =
        machine.attainable(OpsPerByte(100.0));
    EXPECT_DOUBLE_EQ(compute_bound.attainable.value(), 1000.0);
    EXPECT_TRUE(compute_bound.binding.attributed);
    EXPECT_EQ(compute_bound.binding.kind, CeilingKind::Compute);
    EXPECT_EQ(compute_bound.binding.index, 1);
    EXPECT_EQ(machine.ceilingName(compute_bound.binding), "GPU");
    // An attribution is never equal to the unattributed default.
    EXPECT_NE(compute_bound.binding, CeilingRef{});

    // Low AI: the slowest memory level binds (DRAM, index 0).
    const AttainableBound memory_bound =
        machine.attainable(OpsPerByte(0.1));
    EXPECT_DOUBLE_EQ(memory_bound.attainable.value(), 6.0);
    EXPECT_EQ(memory_bound.binding.kind, CeilingKind::Memory);
    EXPECT_EQ(memory_bound.binding.index, 0);
    EXPECT_EQ(machine.ceilingName(memory_bound.binding), "DRAM");
}

TEST(RooflinePlatform, OperatingPointScalesTheWholeFamily)
{
    const RooflinePlatform machine{familySpec()};
    const std::size_t half = machine.operatingPointIndex("half");
    EXPECT_EQ(half, 1u);
    for (const double ai : {0.01, 0.3, 3.0, 40.0, 500.0}) {
        const double nominal =
            machine.attainable(OpsPerByte(ai), 0).attainable.value();
        const double scaled =
            machine.attainable(OpsPerByte(ai), half)
                .attainable.value();
        EXPECT_NEAR(scaled, 0.5 * nominal, 1e-9 * nominal) << ai;
        // Scaling never changes which ceiling binds.
        EXPECT_EQ(machine.attainable(OpsPerByte(ai), 0).binding,
                  machine.attainable(OpsPerByte(ai), half).binding)
            << ai;
    }
    EXPECT_THROW(machine.operatingPointIndex("turbo"), ModelError);
    EXPECT_THROW(machine.attainable(OpsPerByte(1.0), 2), ModelError);
}

TEST(RooflinePlatform, RejectsDegenerateArithmeticIntensity)
{
    const RooflinePlatform machine{familySpec()};
    EXPECT_THROW(machine.attainable(OpsPerByte(0.0)), ModelError);
    EXPECT_THROW(machine.attainable(OpsPerByte(-1.0)), ModelError);
}

TEST(RooflinePlatform, PropertySingleCeilingEqualsFlatBound)
{
    // The acceptance property: a one-compute/one-memory family must
    // reproduce the flat min(peak, AI x BW) bound bit-for-bit at
    // every DVFS operating point.
    const double peak = 1330.0;
    const double bw = 59.7;
    const workload::DvfsModel dvfs;
    const auto points = dvfs.operatingPoints(
        Watts(7.5), {{"nominal", 1.0},
                     {"p80", 0.8},
                     {"p55", 0.55},
                     {"p33", 0.33},
                     {"floor", 0.2}});
    const RooflinePlatform machine =
        RooflinePlatform::singleCeiling(
            "flat", Gops(peak), GigabytesPerSecond(bw), Watts(7.5))
            .withOperatingPoints(points);

    for (std::size_t op = 0; op < points.size(); ++op) {
        const double f = points[op].frequencyFraction;
        // 37 log-spaced intensities across eight decades.
        for (int i = 0; i <= 36; ++i) {
            const double ai = std::pow(10.0, -4.0 + i * 8.0 / 36.0);
            const double flat =
                std::min(peak * f, ai * (bw * f));
            const AttainableBound bound =
                machine.attainable(OpsPerByte(ai), op);
            EXPECT_EQ(bound.attainable.value(), flat)
                << "op " << op << " ai " << ai;
            // The default (unannotated) WorkloadProfile is the
            // same evaluation, bit-for-bit.
            WorkloadProfile profile;
            profile.ai = OpsPerByte(ai);
            EXPECT_EQ(machine.attainable(profile, op)
                          .attainable.value(),
                      flat)
                << "profile op " << op << " ai " << ai;
            // With one ceiling per family the attribution index is
            // always 0 and the kind matches the flat argmin.
            EXPECT_EQ(bound.binding.index, 0);
            EXPECT_EQ(bound.binding.kind,
                      peak * f <= ai * (bw * f)
                          ? CeilingKind::Compute
                          : CeilingKind::Memory);
        }
    }
}

TEST(ComputePlatform, IsASingleCeilingAdapter)
{
    const auto catalog = components::Catalog::standard();
    for (const auto &flat : catalog.computes().items()) {
        const RooflinePlatform &family = flat.roofline();
        ASSERT_EQ(family.computeCeilings().size(), 1u) << flat.name();
        ASSERT_EQ(family.memoryCeilings().size(), 1u) << flat.name();
        // Bit-for-bit: the adapter exposes the family's ceilings.
        EXPECT_EQ(flat.peakThroughput().value(),
                  family.computeCeilings()[0].peak.value());
        EXPECT_EQ(flat.memoryBandwidth().value(),
                  family.memoryCeilings()[0].bandwidth.value());
        EXPECT_EQ(family.operatingPoints()[0].tdp.value(),
                  flat.tdp().value());
    }
}

TEST(Catalog, RooflinePresetsAreMultiCeiling)
{
    const auto catalog = components::Catalog::standard();
    for (const char *name :
         {"Nvidia TX2", "Nvidia AGX", "ARM Cortex-M4"}) {
        const RooflinePlatform &machine =
            catalog.rooflines().byName(name);
        EXPECT_GE(machine.computeCeilings().size(), 2u) << name;
        EXPECT_GE(machine.memoryCeilings().size(), 2u) << name;
        EXPECT_GE(machine.operatingPoints().size(), 3u) << name;

        // The binding ceilings (best compute target, slowest memory
        // level) match the flat catalog entry of the same name, so
        // adapter and family agree on the attainable bound.
        const auto &flat = catalog.computes().byName(name);
        double best_peak = 0.0;
        for (const auto &ceiling : machine.computeCeilings())
            best_peak = std::max(best_peak, ceiling.peak.value());
        double slowest_bw = machine.memoryCeilings()[0].bandwidth
                                .value();
        for (const auto &ceiling : machine.memoryCeilings())
            slowest_bw =
                std::min(slowest_bw, ceiling.bandwidth.value());
        EXPECT_EQ(best_peak, flat.peakThroughput().value()) << name;
        EXPECT_EQ(slowest_bw, flat.memoryBandwidth().value())
            << name;

        // DVFS operating points: monotone frequency, monotone TDP,
        // nominal first at the flat part's TDP.
        const auto &points = machine.operatingPoints();
        EXPECT_EQ(points[0].name, "nominal");
        EXPECT_EQ(points[0].tdp.value(), flat.tdp().value()) << name;
        for (std::size_t i = 1; i < points.size(); ++i) {
            EXPECT_LT(points[i].frequencyFraction,
                      points[i - 1].frequencyFraction);
            EXPECT_LT(points[i].tdp.value(),
                      points[i - 1].tdp.value());
        }
    }
    EXPECT_TRUE(
        studies::rooflinePlatformPresets().contains("Nvidia TX2"));
}

TEST(Throughput, CeilingSetBoundCarriesAttribution)
{
    const RooflinePlatform machine{familySpec()};
    // AI = 100 op/B, work = 2 GOP: compute roof 1000 GOPS -> 500 Hz.
    const auto compute_bound =
        workload::rooflineBound(2.0, OpsPerByte(100.0), machine);
    EXPECT_DOUBLE_EQ(compute_bound.value.value(), 500.0);
    EXPECT_EQ(compute_bound.source,
              workload::ThroughputSource::RooflineBound);
    EXPECT_EQ(compute_bound.binding.kind, CeilingKind::Compute);
    EXPECT_EQ(compute_bound.binding.index, 1);

    // AI = 0.1 op/B: DRAM roof 6 GOPS -> 3 Hz.
    const auto memory_bound =
        workload::rooflineBound(2.0, OpsPerByte(0.1), machine);
    EXPECT_DOUBLE_EQ(memory_bound.value.value(), 3.0);
    EXPECT_EQ(memory_bound.binding.kind, CeilingKind::Memory);
    EXPECT_EQ(memory_bound.binding.index, 0);
}

TEST(F1Model, CeilingAttributionPassesThroughTheHotPath)
{
    static_assert(
        std::is_trivially_copyable_v<platform::CeilingRef>,
        "CeilingRef must stay trivially copyable for the "
        "allocation-free hot path");

    core::F1Inputs inputs;
    inputs.aMax = MetersPerSecondSquared(4.12);
    inputs.sensingRange = Meters(2.73);
    inputs.sensorRate = Hertz(60.0);
    inputs.computeRate = Hertz(20.0);

    // The default is unattributed (measured throughput, override).
    core::F1Analysis out;
    core::F1Model::analyzeInto(inputs, out);
    EXPECT_FALSE(out.computeBinding.attributed);

    inputs.computeBinding = {CeilingKind::Memory, 1, true};
    core::F1Model::analyzeInto(inputs, out);
    EXPECT_TRUE(out.computeBinding.attributed);
    EXPECT_EQ(out.computeBinding, inputs.computeBinding);
    EXPECT_EQ(core::F1Model(inputs).analyze().computeBinding,
              inputs.computeBinding);
}

TEST(Plot, CeilingFamilySeriesCoverEveryCeiling)
{
    const RooflinePlatform machine{familySpec()};
    const auto series =
        plot::ceilingFamilySeries(machine, 0, 0.01, 1000.0, 33);
    // 2 compute + 2 memory + the attainable envelope.
    ASSERT_EQ(series.size(), 5u);
    EXPECT_EQ(series[0].name(), "compute: scalar");
    EXPECT_EQ(series[3].name(), "memory: on-chip");
    EXPECT_EQ(series[4].name(), "attainable");
    EXPECT_EQ(series[4].size(), 33u);
    // At high AI the envelope sits on the best compute roof.
    EXPECT_DOUBLE_EQ(series[4].points().back().y, 1000.0);

    const plot::Chart chart = plot::makeCeilingFamilyChart(
        "family roofline", machine, 1, 0.01, 1000.0, 17);
    EXPECT_EQ(chart.series().size(), 5u);
    EXPECT_THROW(
        plot::ceilingFamilySeries(machine, 0, 0.0, 1.0, 8),
        ModelError);
    EXPECT_THROW(
        plot::ceilingFamilySeries(machine, 0, 1.0, 1.0, 8),
        ModelError);
    EXPECT_THROW(
        plot::ceilingFamilySeries(machine, 0, 0.1, 1.0, 1),
        ModelError);
}

TEST(Dvfs, OperatingPointsFollowTheCmosLaw)
{
    const workload::DvfsModel dvfs;
    const auto points = dvfs.operatingPoints(
        Watts(10.0), {{"nominal", 1.0}, {"half", 0.5}});
    ASSERT_EQ(points.size(), 2u);
    EXPECT_DOUBLE_EQ(points[0].tdp.value(), 10.0);
    // leakage 1 W + dynamic 9 W * 0.5^3.
    EXPECT_NEAR(points[1].tdp.value(), 1.0 + 9.0 * 0.125, 1e-12);
    EXPECT_THROW(
        dvfs.operatingPoints(Watts(10.0), {{"too-slow", 0.05}}),
        ModelError);
}

TEST(RooflinePlatform, CeilingNamesAndKinds)
{
    const RooflinePlatform machine{familySpec()};
    EXPECT_STREQ(toString(CeilingKind::Compute), "compute");
    EXPECT_STREQ(toString(CeilingKind::Memory), "memory");
    EXPECT_EQ(machine.ceilingName({CeilingKind::Compute, 0}),
              "scalar");
    EXPECT_EQ(machine.ceilingName({CeilingKind::Memory, 0}), "DRAM");
    EXPECT_THROW(machine.ceilingName({CeilingKind::Compute, 9}),
                 ModelError);
    EXPECT_THROW(machine.ceilingName({CeilingKind::Memory, 9}),
                 ModelError);
}

TEST(CeilingRef, FamilyTagMakesMisattributionDetectable)
{
    const RooflinePlatform machine{familySpec()};
    RooflinePlatform::Spec other_spec = familySpec();
    other_spec.name = "other-family";
    const RooflinePlatform other{other_spec};

    ASSERT_NE(machine.familyTag(), 0u);
    ASSERT_NE(machine.familyTag(), other.familyTag());

    const CeilingRef ref =
        machine.attainable(OpsPerByte(100.0)).binding;
    EXPECT_EQ(ref.family, machine.familyTag());
    EXPECT_TRUE(machine.resolves(ref));
    EXPECT_FALSE(other.resolves(ref));
    // Resolving against the producing family works; against any
    // other family it is an error, not a silent misattribution.
    EXPECT_EQ(machine.ceilingName(ref), "GPU");
    EXPECT_THROW(other.ceilingName(ref), ModelError);
    EXPECT_THROW(other.ceilingRoof(ref, OpsPerByte(1.0)),
                 ModelError);

    // Untagged (hand-made) refs resolve anywhere, bounds allowing.
    const CeilingRef untagged{CeilingKind::Compute, 0, true};
    EXPECT_TRUE(machine.resolves(untagged));
    EXPECT_TRUE(other.resolves(untagged));
    // A name-preserving copy keeps the tag, so DVFS variants of one
    // platform stay interchangeable.
    const RooflinePlatform variant = machine.withOperatingPoints(
        {{"nominal", 1.0, Watts(10.0)}});
    EXPECT_EQ(variant.familyTag(), machine.familyTag());
    EXPECT_TRUE(variant.resolves(ref));

    // Equality distinguishes same-looking refs from different
    // families.
    const CeilingRef foreign =
        other.attainable(OpsPerByte(100.0)).binding;
    EXPECT_EQ(foreign.kind, ref.kind);
    EXPECT_EQ(foreign.index, ref.index);
    EXPECT_NE(foreign, ref);
}

TEST(WorkloadProfile, ApplicabilityMaskSkipsForeignTargets)
{
    const RooflinePlatform machine{familySpec()};

    // A scalar-only kernel cannot ride the GPU roof: the scalar
    // ceiling — not the platform's most capable target — binds.
    WorkloadProfile scalar_only;
    scalar_only.ai = OpsPerByte(100.0);
    scalar_only.targets = targetBit(ComputeTarget::Scalar);
    const AttainableBound bound = machine.attainable(scalar_only);
    EXPECT_DOUBLE_EQ(bound.attainable.value(), 40.0);
    EXPECT_EQ(bound.binding.kind, CeilingKind::Compute);
    EXPECT_EQ(bound.binding.index, 0);

    // A mask admitting every target reproduces the unannotated
    // evaluation.
    WorkloadProfile all = scalar_only;
    all.targets = kAllTargets;
    EXPECT_EQ(machine.attainable(all).attainable.value(),
              machine.attainable(OpsPerByte(100.0))
                  .attainable.value());

    // A mask no ceiling satisfies is an error, not a silent
    // fallback (familySpec has no Simd ceiling).
    WorkloadProfile simd_only = scalar_only;
    simd_only.targets = targetBit(ComputeTarget::Simd);
    EXPECT_THROW(machine.attainable(simd_only), ModelError);

    // General ceilings apply to every workload: the single-ceiling
    // adapter family accepts even a scalar-only profile.
    const RooflinePlatform flat = RooflinePlatform::singleCeiling(
        "flat", Gops(100.0), GigabytesPerSecond(10.0));
    EXPECT_NO_THROW(flat.attainable(scalar_only));
}

TEST(WorkloadProfile, StageGatedCeilingAppliesOnlyToItsStage)
{
    RooflinePlatform::Spec spec = familySpec();
    spec.computeCeilings.push_back(
        {"VIO ASIC", Gops(5000.0), ComputeTarget::Accelerator,
         "SLAM"});
    const RooflinePlatform machine{spec};

    WorkloadProfile profile;
    profile.ai = OpsPerByte(1000.0);

    // A whole-algorithm profile (no stage) cannot use the gated
    // ceiling: the ungated GPU roof binds.
    EXPECT_DOUBLE_EQ(machine.attainable(profile).attainable.value(),
                     1000.0);

    // The SLAM-stage kernel unlocks it.
    profile.stage = stageTag("SLAM");
    const AttainableBound slam = machine.attainable(profile);
    EXPECT_DOUBLE_EQ(slam.attainable.value(), 5000.0);
    EXPECT_EQ(machine.ceilingName(slam.binding), "VIO ASIC");

    // A different stage does not.
    profile.stage = stageTag("planning");
    EXPECT_DOUBLE_EQ(machine.attainable(profile).attainable.value(),
                     1000.0);
    EXPECT_NE(stageTag("SLAM"), stageTag("planning"));
    EXPECT_EQ(stageTag(""), 0u);
}

TEST(WorkloadProfile, CarmCrossoverBindsOnChipThenCompute)
{
    // The CARM acceptance property: a working set that fits on
    // chip (only 5% of its bytes reach DRAM) must bind the on-chip
    // ceiling at low AI and hand off to the compute roof at high
    // AI — the weakest-link chain would pin DRAM forever.
    const RooflinePlatform machine{familySpec()};
    WorkloadProfile cached;
    cached.trafficFraction[0] = 0.05; // DRAM sees 5% of the bytes.

    // Low AI: on-chip (300 GB/s at the raw AI) is below both the
    // DRAM level (60 GB/s at 20x the AI => 1200 x ai) and the GPU.
    cached.ai = OpsPerByte(1.0);
    const AttainableBound low = machine.attainable(cached);
    EXPECT_EQ(low.binding.kind, CeilingKind::Memory);
    EXPECT_EQ(machine.ceilingName(low.binding), "on-chip");
    EXPECT_DOUBLE_EQ(low.attainable.value(), 300.0);
    // The unannotated profile at the same AI stays DRAM-bound.
    const AttainableBound flat =
        machine.attainable(OpsPerByte(1.0));
    EXPECT_EQ(machine.ceilingName(flat.binding), "DRAM");
    EXPECT_DOUBLE_EQ(flat.attainable.value(), 60.0);

    // High AI: the compute roof takes over (crossover at
    // ai = 1000/300).
    cached.ai = OpsPerByte(50.0);
    const AttainableBound high = machine.attainable(cached);
    EXPECT_EQ(high.binding.kind, CeilingKind::Compute);
    EXPECT_EQ(machine.ceilingName(high.binding), "GPU");
    EXPECT_DOUBLE_EQ(high.attainable.value(), 1000.0);

    // Zero traffic at a level: that level can never bind.
    WorkloadProfile sram_only;
    sram_only.ai = OpsPerByte(0.001);
    sram_only.trafficFraction[0] = 0.0;
    const AttainableBound no_dram = machine.attainable(sram_only);
    EXPECT_EQ(machine.ceilingName(no_dram.binding), "on-chip");

    // Degenerate fractions are rejected.
    WorkloadProfile bad;
    bad.ai = OpsPerByte(1.0);
    bad.trafficFraction[1] = -0.5;
    EXPECT_THROW(machine.attainable(bad), ModelError);
}

TEST(WorkloadProfile, ValidationNamesTheOffendingField)
{
    const RooflinePlatform machine{familySpec()};
    const double nan = std::numeric_limits<double>::quiet_NaN();

    // NaN / non-positive AI is rejected, and the diagnostic names
    // the field so a bad annotation is findable from the message.
    WorkloadProfile bad_ai;
    bad_ai.ai = OpsPerByte(nan);
    try {
        machine.attainable(bad_ai);
        FAIL() << "NaN ai must throw";
    } catch (const ModelError &e) {
        EXPECT_NE(std::string(e.what()).find("ai"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("family"),
                  std::string::npos);
    }
    bad_ai.ai = OpsPerByte(-2.0);
    EXPECT_THROW(machine.attainable(bad_ai), ModelError);
    bad_ai.ai = OpsPerByte(0.0);
    EXPECT_THROW(machine.attainable(bad_ai), ModelError);
    bad_ai.ai =
        OpsPerByte(std::numeric_limits<double>::infinity());
    EXPECT_THROW(machine.attainable(bad_ai), ModelError);

    // NaN and negative traffic fractions likewise, with the level
    // index in the message.
    WorkloadProfile bad_traffic;
    bad_traffic.ai = OpsPerByte(1.0);
    bad_traffic.trafficFraction[1] = nan;
    try {
        machine.attainable(bad_traffic);
        FAIL() << "NaN trafficFraction must throw";
    } catch (const ModelError &e) {
        EXPECT_NE(std::string(e.what()).find("trafficFraction[1]"),
                  std::string::npos);
    }
    bad_traffic.trafficFraction[1] = -0.25;
    EXPECT_THROW(machine.attainable(bad_traffic), ModelError);

    // A fraction above 1 is legal: write amplification means a
    // level can see more bytes than the algorithm's nominal count.
    WorkloadProfile amplified;
    amplified.ai = OpsPerByte(1.0);
    amplified.trafficFraction[0] = 2.0;
    EXPECT_NO_THROW(machine.attainable(amplified));

    // The standalone validator is callable directly.
    EXPECT_NO_THROW(validateWorkloadProfile(amplified, "test"));
    EXPECT_THROW(validateWorkloadProfile(bad_traffic, "test"),
                 ModelError);
}

TEST(Workload, TraitsMapOntoAPlatformProfile)
{
    const auto algorithms = workload::annotatedAlgorithms();
    const auto catalog = components::Catalog::standard();
    const RooflinePlatform &tx2 =
        catalog.rooflines().byName("Nvidia TX2");

    // The calibrated DroNet annotation (DRAM traffic fraction
    // 0.95 <= 1) maps onto the TX2's DRAM level, leaves targets and
    // stage unconstrained, and — because it only *raises* the DRAM
    // CARM roof — keeps the classic compute-bound number
    // bit-for-bit.
    const auto &dronet = algorithms.byName("DroNet");
    const WorkloadProfile plain =
        workload::workloadProfile(dronet, tx2);
    EXPECT_EQ(plain.targets, kAllTargets);
    EXPECT_EQ(plain.stage, 0u);
    EXPECT_DOUBLE_EQ(plain.trafficFraction[0], 0.95);
    EXPECT_EQ(
        workload::rooflineBound(dronet, tx2).value.value(),
        workload::rooflineBound(dronet.workPerFrameGop(),
                                dronet.arithmeticIntensity(), tx2)
            .value.value());

    // The scalar-only variant binds the scalar ceiling (index 0),
    // not the platform's top GPU roof.
    const auto scalar_bound = workload::rooflineBound(
        algorithms.byName("DroNet (scalar-only)"), tx2);
    EXPECT_EQ(scalar_bound.binding.kind, CeilingKind::Compute);
    EXPECT_EQ(tx2.ceilingName(scalar_bound.binding),
              "Denver2/A57 scalar");
    EXPECT_DOUBLE_EQ(scalar_bound.value.value(), 42.0 / 0.04);

    // The cache-resident VIO kernel binds the on-chip memory level
    // on the TX2 family (CARM), and the stage-gated Navion ceiling
    // on the accelerator family.
    const auto &vio =
        algorithms.byName("VIO frontend (cache-resident)");
    const auto vio_tx2 = workload::rooflineBound(vio, tx2);
    EXPECT_EQ(vio_tx2.binding.kind, CeilingKind::Memory);
    EXPECT_EQ(tx2.ceilingName(vio_tx2.binding), "GPU L2/shared");

    const RooflinePlatform &navion =
        catalog.rooflines().byName("TX2-CPU + Navion");
    const auto vio_navion = workload::rooflineBound(vio, navion);
    // AI 0.5: on-chip roof 150 GOPS < the 200 GOPS Navion ceiling,
    // so memory still binds; a denser SLAM kernel rides the ASIC.
    EXPECT_EQ(navion.ceilingName(vio_navion.binding),
              "on-chip SRAM");
    workload::AutonomyAlgorithm dense_vio =
        workload::AutonomyAlgorithm("dense VIO",
                                    workload::Paradigm::SensePlanAct,
                                    0.2, 10.0)
            .withTraits(vio.traits());
    const auto dense_bound =
        workload::rooflineBound(dense_vio, navion);
    EXPECT_EQ(navion.ceilingName(dense_bound.binding),
              "Navion VIO ASIC");

    // Level names a platform lacks are ignored — annotations travel
    // across platforms.
    const RooflinePlatform &m4 =
        catalog.rooflines().byName("ARM Cortex-M4");
    EXPECT_NO_THROW(workload::rooflineBound(vio, m4));

    // Traits validation.
    workload::WorkloadTraits bad;
    bad.levelTraffic = {{"DRAM", -1.0}};
    EXPECT_THROW(dronet.withTraits(bad), ModelError);
}

} // namespace
