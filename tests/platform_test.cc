/**
 * @file
 * Unit tests for the platform layer: the multi-ceiling
 * RooflinePlatform, DVFS operating points, the single-ceiling
 * ComputePlatform adapter, the catalog presets, and the ceiling
 * attribution pass-through in the F-1 hot path.
 */

#include <gtest/gtest.h>

#include <type_traits>

#include "components/catalog.hh"
#include "core/f1_model.hh"
#include "platform/roofline_platform.hh"
#include "plot/roofline_chart.hh"
#include "studies/presets.hh"
#include "support/errors.hh"
#include "workload/dvfs.hh"
#include "workload/throughput.hh"

namespace {

using namespace uavf1;
using namespace uavf1::units;
using namespace uavf1::platform;

/** A TX2-flavoured two-by-two family used across the tests. */
RooflinePlatform::Spec
familySpec()
{
    RooflinePlatform::Spec spec;
    spec.name = "family";
    spec.computeCeilings = {{"scalar", Gops(40.0)},
                            {"GPU", Gops(1000.0)}};
    spec.memoryCeilings = {{"DRAM", GigabytesPerSecond(60.0)},
                           {"on-chip", GigabytesPerSecond(300.0)}};
    spec.operatingPoints = {{"nominal", 1.0, Watts(10.0)},
                            {"half", 0.5, Watts(3.0)}};
    return spec;
}

TEST(RooflinePlatform, ValidatesSpec)
{
    RooflinePlatform::Spec spec = familySpec();
    spec.name.clear();
    EXPECT_THROW(RooflinePlatform{spec}, ModelError);

    spec = familySpec();
    spec.computeCeilings.clear();
    EXPECT_THROW(RooflinePlatform{spec}, ModelError);

    spec = familySpec();
    spec.memoryCeilings.clear();
    EXPECT_THROW(RooflinePlatform{spec}, ModelError);

    spec = familySpec();
    spec.computeCeilings[0].peak = Gops(0.0);
    EXPECT_THROW(RooflinePlatform{spec}, ModelError);

    spec = familySpec();
    spec.memoryCeilings[1].bandwidth = GigabytesPerSecond(-1.0);
    EXPECT_THROW(RooflinePlatform{spec}, ModelError);

    spec = familySpec();
    spec.operatingPoints[1].frequencyFraction = 1.5;
    EXPECT_THROW(RooflinePlatform{spec}, ModelError);

    spec = familySpec();
    spec.operatingPoints[1].frequencyFraction = 0.0;
    EXPECT_THROW(RooflinePlatform{spec}, ModelError);
}

TEST(RooflinePlatform, DefaultsToANominalOperatingPoint)
{
    RooflinePlatform::Spec spec = familySpec();
    spec.operatingPoints.clear();
    const RooflinePlatform machine{spec};
    ASSERT_EQ(machine.operatingPoints().size(), 1u);
    EXPECT_EQ(machine.operatingPoints()[0].name, "nominal");
    EXPECT_DOUBLE_EQ(machine.operatingPoints()[0].frequencyFraction,
                     1.0);
}

TEST(RooflinePlatform, AttributesTheBindingCeiling)
{
    const RooflinePlatform machine{familySpec()};

    // High AI: the best compute roof binds (GPU, index 1).
    const AttainableBound compute_bound =
        machine.attainable(OpsPerByte(100.0));
    EXPECT_DOUBLE_EQ(compute_bound.attainable.value(), 1000.0);
    EXPECT_TRUE(compute_bound.binding.attributed);
    EXPECT_EQ(compute_bound.binding.kind, CeilingKind::Compute);
    EXPECT_EQ(compute_bound.binding.index, 1);
    EXPECT_EQ(machine.ceilingName(compute_bound.binding), "GPU");
    // An attribution is never equal to the unattributed default.
    EXPECT_NE(compute_bound.binding, CeilingRef{});

    // Low AI: the slowest memory level binds (DRAM, index 0).
    const AttainableBound memory_bound =
        machine.attainable(OpsPerByte(0.1));
    EXPECT_DOUBLE_EQ(memory_bound.attainable.value(), 6.0);
    EXPECT_EQ(memory_bound.binding.kind, CeilingKind::Memory);
    EXPECT_EQ(memory_bound.binding.index, 0);
    EXPECT_EQ(machine.ceilingName(memory_bound.binding), "DRAM");
}

TEST(RooflinePlatform, OperatingPointScalesTheWholeFamily)
{
    const RooflinePlatform machine{familySpec()};
    const std::size_t half = machine.operatingPointIndex("half");
    EXPECT_EQ(half, 1u);
    for (const double ai : {0.01, 0.3, 3.0, 40.0, 500.0}) {
        const double nominal =
            machine.attainable(OpsPerByte(ai), 0).attainable.value();
        const double scaled =
            machine.attainable(OpsPerByte(ai), half)
                .attainable.value();
        EXPECT_NEAR(scaled, 0.5 * nominal, 1e-9 * nominal) << ai;
        // Scaling never changes which ceiling binds.
        EXPECT_EQ(machine.attainable(OpsPerByte(ai), 0).binding,
                  machine.attainable(OpsPerByte(ai), half).binding)
            << ai;
    }
    EXPECT_THROW(machine.operatingPointIndex("turbo"), ModelError);
    EXPECT_THROW(machine.attainable(OpsPerByte(1.0), 2), ModelError);
}

TEST(RooflinePlatform, RejectsDegenerateArithmeticIntensity)
{
    const RooflinePlatform machine{familySpec()};
    EXPECT_THROW(machine.attainable(OpsPerByte(0.0)), ModelError);
    EXPECT_THROW(machine.attainable(OpsPerByte(-1.0)), ModelError);
}

TEST(RooflinePlatform, PropertySingleCeilingEqualsFlatBound)
{
    // The acceptance property: a one-compute/one-memory family must
    // reproduce the flat min(peak, AI x BW) bound bit-for-bit at
    // every DVFS operating point.
    const double peak = 1330.0;
    const double bw = 59.7;
    const workload::DvfsModel dvfs;
    const auto points = dvfs.operatingPoints(
        Watts(7.5), {{"nominal", 1.0},
                     {"p80", 0.8},
                     {"p55", 0.55},
                     {"p33", 0.33},
                     {"floor", 0.2}});
    const RooflinePlatform machine =
        RooflinePlatform::singleCeiling(
            "flat", Gops(peak), GigabytesPerSecond(bw), Watts(7.5))
            .withOperatingPoints(points);

    for (std::size_t op = 0; op < points.size(); ++op) {
        const double f = points[op].frequencyFraction;
        // 37 log-spaced intensities across eight decades.
        for (int i = 0; i <= 36; ++i) {
            const double ai = std::pow(10.0, -4.0 + i * 8.0 / 36.0);
            const double flat =
                std::min(peak * f, ai * (bw * f));
            const AttainableBound bound =
                machine.attainable(OpsPerByte(ai), op);
            EXPECT_EQ(bound.attainable.value(), flat)
                << "op " << op << " ai " << ai;
            // With one ceiling per family the attribution index is
            // always 0 and the kind matches the flat argmin.
            EXPECT_EQ(bound.binding.index, 0);
            EXPECT_EQ(bound.binding.kind,
                      peak * f <= ai * (bw * f)
                          ? CeilingKind::Compute
                          : CeilingKind::Memory);
        }
    }
}

TEST(ComputePlatform, IsASingleCeilingAdapter)
{
    const auto catalog = components::Catalog::standard();
    for (const auto &flat : catalog.computes().items()) {
        const RooflinePlatform &family = flat.roofline();
        ASSERT_EQ(family.computeCeilings().size(), 1u) << flat.name();
        ASSERT_EQ(family.memoryCeilings().size(), 1u) << flat.name();
        // Bit-for-bit: the adapter exposes the family's ceilings.
        EXPECT_EQ(flat.peakThroughput().value(),
                  family.computeCeilings()[0].peak.value());
        EXPECT_EQ(flat.memoryBandwidth().value(),
                  family.memoryCeilings()[0].bandwidth.value());
        EXPECT_EQ(family.operatingPoints()[0].tdp.value(),
                  flat.tdp().value());
    }
}

TEST(Catalog, RooflinePresetsAreMultiCeiling)
{
    const auto catalog = components::Catalog::standard();
    for (const char *name :
         {"Nvidia TX2", "Nvidia AGX", "ARM Cortex-M4"}) {
        const RooflinePlatform &machine =
            catalog.rooflines().byName(name);
        EXPECT_GE(machine.computeCeilings().size(), 2u) << name;
        EXPECT_GE(machine.memoryCeilings().size(), 2u) << name;
        EXPECT_GE(machine.operatingPoints().size(), 3u) << name;

        // The binding ceilings (best compute target, slowest memory
        // level) match the flat catalog entry of the same name, so
        // adapter and family agree on the attainable bound.
        const auto &flat = catalog.computes().byName(name);
        double best_peak = 0.0;
        for (const auto &ceiling : machine.computeCeilings())
            best_peak = std::max(best_peak, ceiling.peak.value());
        double slowest_bw = machine.memoryCeilings()[0].bandwidth
                                .value();
        for (const auto &ceiling : machine.memoryCeilings())
            slowest_bw =
                std::min(slowest_bw, ceiling.bandwidth.value());
        EXPECT_EQ(best_peak, flat.peakThroughput().value()) << name;
        EXPECT_EQ(slowest_bw, flat.memoryBandwidth().value())
            << name;

        // DVFS operating points: monotone frequency, monotone TDP,
        // nominal first at the flat part's TDP.
        const auto &points = machine.operatingPoints();
        EXPECT_EQ(points[0].name, "nominal");
        EXPECT_EQ(points[0].tdp.value(), flat.tdp().value()) << name;
        for (std::size_t i = 1; i < points.size(); ++i) {
            EXPECT_LT(points[i].frequencyFraction,
                      points[i - 1].frequencyFraction);
            EXPECT_LT(points[i].tdp.value(),
                      points[i - 1].tdp.value());
        }
    }
    EXPECT_TRUE(
        studies::rooflinePlatformPresets().contains("Nvidia TX2"));
}

TEST(Throughput, CeilingSetBoundCarriesAttribution)
{
    const RooflinePlatform machine{familySpec()};
    // AI = 100 op/B, work = 2 GOP: compute roof 1000 GOPS -> 500 Hz.
    const auto compute_bound =
        workload::rooflineBound(2.0, OpsPerByte(100.0), machine);
    EXPECT_DOUBLE_EQ(compute_bound.value.value(), 500.0);
    EXPECT_EQ(compute_bound.source,
              workload::ThroughputSource::RooflineBound);
    EXPECT_EQ(compute_bound.binding.kind, CeilingKind::Compute);
    EXPECT_EQ(compute_bound.binding.index, 1);

    // AI = 0.1 op/B: DRAM roof 6 GOPS -> 3 Hz.
    const auto memory_bound =
        workload::rooflineBound(2.0, OpsPerByte(0.1), machine);
    EXPECT_DOUBLE_EQ(memory_bound.value.value(), 3.0);
    EXPECT_EQ(memory_bound.binding.kind, CeilingKind::Memory);
    EXPECT_EQ(memory_bound.binding.index, 0);
}

TEST(F1Model, CeilingAttributionPassesThroughTheHotPath)
{
    static_assert(
        std::is_trivially_copyable_v<platform::CeilingRef>,
        "CeilingRef must stay trivially copyable for the "
        "allocation-free hot path");

    core::F1Inputs inputs;
    inputs.aMax = MetersPerSecondSquared(4.12);
    inputs.sensingRange = Meters(2.73);
    inputs.sensorRate = Hertz(60.0);
    inputs.computeRate = Hertz(20.0);

    // The default is unattributed (measured throughput, override).
    core::F1Analysis out;
    core::F1Model::analyzeInto(inputs, out);
    EXPECT_FALSE(out.computeBinding.attributed);

    inputs.computeBinding = {CeilingKind::Memory, 1, true};
    core::F1Model::analyzeInto(inputs, out);
    EXPECT_TRUE(out.computeBinding.attributed);
    EXPECT_EQ(out.computeBinding, inputs.computeBinding);
    EXPECT_EQ(core::F1Model(inputs).analyze().computeBinding,
              inputs.computeBinding);
}

TEST(Plot, CeilingFamilySeriesCoverEveryCeiling)
{
    const RooflinePlatform machine{familySpec()};
    const auto series =
        plot::ceilingFamilySeries(machine, 0, 0.01, 1000.0, 33);
    // 2 compute + 2 memory + the attainable envelope.
    ASSERT_EQ(series.size(), 5u);
    EXPECT_EQ(series[0].name(), "compute: scalar");
    EXPECT_EQ(series[3].name(), "memory: on-chip");
    EXPECT_EQ(series[4].name(), "attainable");
    EXPECT_EQ(series[4].size(), 33u);
    // At high AI the envelope sits on the best compute roof.
    EXPECT_DOUBLE_EQ(series[4].points().back().y, 1000.0);

    const plot::Chart chart = plot::makeCeilingFamilyChart(
        "family roofline", machine, 1, 0.01, 1000.0, 17);
    EXPECT_EQ(chart.series().size(), 5u);
    EXPECT_THROW(
        plot::ceilingFamilySeries(machine, 0, 0.0, 1.0, 8),
        ModelError);
    EXPECT_THROW(
        plot::ceilingFamilySeries(machine, 0, 1.0, 1.0, 8),
        ModelError);
    EXPECT_THROW(
        plot::ceilingFamilySeries(machine, 0, 0.1, 1.0, 1),
        ModelError);
}

TEST(Dvfs, OperatingPointsFollowTheCmosLaw)
{
    const workload::DvfsModel dvfs;
    const auto points = dvfs.operatingPoints(
        Watts(10.0), {{"nominal", 1.0}, {"half", 0.5}});
    ASSERT_EQ(points.size(), 2u);
    EXPECT_DOUBLE_EQ(points[0].tdp.value(), 10.0);
    // leakage 1 W + dynamic 9 W * 0.5^3.
    EXPECT_NEAR(points[1].tdp.value(), 1.0 + 9.0 * 0.125, 1e-12);
    EXPECT_THROW(
        dvfs.operatingPoints(Watts(10.0), {{"too-slow", 0.05}}),
        ModelError);
}

TEST(RooflinePlatform, CeilingNamesAndKinds)
{
    const RooflinePlatform machine{familySpec()};
    EXPECT_STREQ(toString(CeilingKind::Compute), "compute");
    EXPECT_STREQ(toString(CeilingKind::Memory), "memory");
    EXPECT_EQ(machine.ceilingName({CeilingKind::Compute, 0}),
              "scalar");
    EXPECT_EQ(machine.ceilingName({CeilingKind::Memory, 0}), "DRAM");
    EXPECT_THROW(machine.ceilingName({CeilingKind::Compute, 9}),
                 ModelError);
    EXPECT_THROW(machine.ceilingName({CeilingKind::Memory, 9}),
                 ModelError);
}

} // namespace
