/**
 * @file
 * Unit tests for the plot library: axes, charts, SVG/ASCII/CSV
 * rendering and the roofline chart builder.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/f1_model.hh"
#include "plot/ascii_renderer.hh"
#include "plot/axis.hh"
#include "plot/chart.hh"
#include "plot/csv_writer.hh"
#include "plot/roofline_chart.hh"
#include "plot/svg_writer.hh"
#include "support/errors.hh"

namespace {

using namespace uavf1;
using namespace uavf1::plot;

TEST(Axis, LinearNormalization)
{
    Axis axis("x");
    axis.range(0.0, 10.0);
    EXPECT_DOUBLE_EQ(axis.normalized(0.0), 0.0);
    EXPECT_DOUBLE_EQ(axis.normalized(5.0), 0.5);
    EXPECT_DOUBLE_EQ(axis.normalized(10.0), 1.0);
    // Clamping.
    EXPECT_DOUBLE_EQ(axis.normalized(-5.0), 0.0);
    EXPECT_DOUBLE_EQ(axis.normalized(50.0), 1.0);
}

TEST(Axis, LogNormalization)
{
    Axis axis("f", Scale::Log10);
    axis.range(1.0, 1000.0);
    EXPECT_DOUBLE_EQ(axis.normalized(1.0), 0.0);
    EXPECT_NEAR(axis.normalized(31.6227766), 0.5, 1e-6);
    EXPECT_DOUBLE_EQ(axis.normalized(1000.0), 1.0);
}

TEST(Axis, AutoFitAndFinalize)
{
    Axis axis("x");
    axis.accommodate(2.0);
    axis.accommodate(8.0);
    axis.finalize();
    EXPECT_LE(axis.lo(), 2.0);
    EXPECT_GE(axis.hi(), 8.0);
}

TEST(Axis, LogFinalizeSnapsToDecades)
{
    Axis axis("f", Scale::Log10);
    axis.accommodate(3.0);
    axis.accommodate(300.0);
    axis.finalize();
    EXPECT_DOUBLE_EQ(axis.lo(), 1.0);
    EXPECT_DOUBLE_EQ(axis.hi(), 1000.0);
}

TEST(Axis, LogIgnoresNonPositive)
{
    Axis axis("f", Scale::Log10);
    axis.accommodate(-5.0);
    axis.accommodate(0.0);
    axis.accommodate(10.0);
    axis.finalize();
    EXPECT_GT(axis.lo(), 0.0);
}

TEST(Axis, LinearTicksAreNiceNumbers)
{
    Axis axis("x");
    axis.range(0.0, 10.0);
    const auto ticks = axis.ticks(5);
    ASSERT_GE(ticks.size(), 3u);
    for (std::size_t i = 1; i < ticks.size(); ++i)
        EXPECT_GT(ticks[i].value, ticks[i - 1].value);
    EXPECT_EQ(ticks.front().label, "0");
}

TEST(Axis, LogTicksAreDecades)
{
    Axis axis("f", Scale::Log10);
    axis.range(1.0, 1000.0);
    const auto ticks = axis.ticks();
    ASSERT_EQ(ticks.size(), 4u);
    EXPECT_DOUBLE_EQ(ticks[0].value, 1.0);
    EXPECT_DOUBLE_EQ(ticks[3].value, 1000.0);
    EXPECT_EQ(ticks[3].label, "1k");
}

TEST(Axis, RangeValidation)
{
    Axis axis("x");
    EXPECT_THROW(axis.range(5.0, 5.0), ModelError);
    Axis log_axis("f", Scale::Log10);
    EXPECT_THROW(log_axis.range(0.0, 10.0), ModelError);
}

TEST(Chart, FitAxesCoversSeriesAndAnnotations)
{
    Chart chart("t", Axis("x"), Axis("y"));
    Series s("s");
    s.add(1.0, 2.0).add(5.0, 10.0);
    chart.add(s);
    chart.annotate(8.0, 4.0, "note");
    chart.hline(12.0, "ceiling");
    chart.vline(9.0, "knee");
    chart.fitAxes();
    EXPECT_GE(chart.xAxis().hi(), 9.0);
    EXPECT_GE(chart.yAxis().hi(), 12.0);
}

TEST(Svg, ContainsStructureAndData)
{
    Chart chart("My Roofline", Axis("Throughput (Hz)", Scale::Log10),
                Axis("Velocity (m/s)"));
    Series s("UAV", SeriesStyle::LineAndMarkers);
    for (double f = 1.0; f <= 100.0; f *= 2.0)
        s.add(f, f / 10.0);
    chart.add(s);
    chart.annotate(50.0, 5.0, "knee");

    const std::string svg = SvgWriter().render(chart);
    EXPECT_NE(svg.find("<svg"), std::string::npos);
    EXPECT_NE(svg.find("</svg>"), std::string::npos);
    EXPECT_NE(svg.find("My Roofline"), std::string::npos);
    EXPECT_NE(svg.find("<path"), std::string::npos);
    EXPECT_NE(svg.find("<circle"), std::string::npos);
    EXPECT_NE(svg.find("knee"), std::string::npos);
    EXPECT_NE(svg.find("Throughput (Hz)"), std::string::npos);
}

TEST(Svg, EscapesXmlSpecials)
{
    Chart chart("a < b & c", Axis("x"), Axis("y"));
    Series s("s<>&");
    s.add(1.0, 1.0);
    s.add(2.0, 2.0);
    chart.add(s);
    const std::string svg = SvgWriter().render(chart);
    EXPECT_EQ(svg.find("a < b &amp;"), std::string::npos);
    EXPECT_NE(svg.find("a &lt; b &amp; c"), std::string::npos);
}

TEST(Svg, WriteFileRoundTrip)
{
    Chart chart("file test", Axis("x"), Axis("y"));
    Series s("s");
    s.add(0.0, 0.0).add(1.0, 1.0);
    chart.add(s);
    const std::string path = "plot_test_out.svg";
    SvgWriter().writeFile(chart, path);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_NE(content.find("<svg"), std::string::npos);
    in.close();
    std::remove(path.c_str());

    EXPECT_THROW(
        SvgWriter().writeFile(chart, "/nonexistent-dir/x.svg"),
        ModelError);
}

TEST(Ascii, RendersGridAxesAndLegend)
{
    Chart chart("ascii test", Axis("f (Hz)", Scale::Log10),
                Axis("v (m/s)"));
    Series s("roofline");
    for (double f = 1.0; f <= 1000.0; f *= 1.5)
        s.add(f, std::min(10.0, f / 20.0));
    chart.add(s);
    const std::string out = AsciiRenderer().render(chart);
    EXPECT_NE(out.find("ascii test"), std::string::npos);
    EXPECT_NE(out.find('*'), std::string::npos);
    EXPECT_NE(out.find("roofline"), std::string::npos);
    EXPECT_NE(out.find("x: f (Hz)"), std::string::npos);
    // Frame bottom present.
    EXPECT_NE(out.find("+-"), std::string::npos);
}

TEST(Ascii, TooSmallCanvasRejected)
{
    AsciiRenderer::Options options;
    options.width = 4;
    options.height = 2;
    EXPECT_THROW(AsciiRenderer{options}, ModelError);
}

TEST(Csv, LongFormRendering)
{
    Series a("alpha");
    a.add(1.0, 2.0);
    Series b("beta,with comma");
    b.add(3.0, 4.5);
    const std::string csv =
        CsvWriter::render({a, b}, "f_hz", "v_mps");
    EXPECT_NE(csv.find("series,f_hz,v_mps\n"), std::string::npos);
    EXPECT_NE(csv.find("alpha,1,2\n"), std::string::npos);
    EXPECT_NE(csv.find("\"beta,with comma\",3,4.5\n"),
              std::string::npos);
}

TEST(Csv, QuoteRules)
{
    EXPECT_EQ(CsvWriter::quote("plain"), "plain");
    EXPECT_EQ(CsvWriter::quote("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::quote("say \"hi\""), "\"say \"\"hi\"\"\"");
    // Bare '\r' (from CRLF-bearing names) must trigger quoting just
    // like '\n', or the row structure breaks.
    EXPECT_EQ(CsvWriter::quote("a\rb"), "\"a\rb\"");
    EXPECT_EQ(CsvWriter::quote("a\r\nb"), "\"a\r\nb\"");
}

TEST(RooflineChart, BuildsFromF1Curves)
{
    core::F1Inputs inputs;
    inputs.aMax = units::MetersPerSecondSquared(4.12);
    inputs.sensingRange = units::Meters(2.73);
    inputs.sensorRate = units::Hertz(60.0);
    inputs.computeRate = units::Hertz(178.0);
    const core::F1Model model(inputs);

    Chart chart = makeRooflineChart(
        "F-1", {{"Pelican", model.curve(), true, true}});
    EXPECT_EQ(chart.series().size(), 2u); // Line + operating marker.
    EXPECT_EQ(chart.annotations().size(), 1u);
    EXPECT_NE(chart.annotations()[0].text.find("knee"),
              std::string::npos);
    // Render both ways without throwing.
    EXPECT_NO_THROW(SvgWriter().render(chart));
    EXPECT_NO_THROW(AsciiRenderer().render(chart));
}

} // namespace
