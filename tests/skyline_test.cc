/**
 * @file
 * Unit tests for the skyline library: knob parsing (Table II),
 * automatic analysis tips, reports and the design-space explorer.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "components/catalog.hh"
#include "exec/thread_pool.hh"
#include "skyline/dse.hh"
#include "skyline/report.hh"
#include "skyline/session.hh"
#include "support/errors.hh"
#include "support/rng.hh"

namespace {

using namespace uavf1;
using namespace uavf1::skyline;

TEST(Session, DefaultKnobsAnalyzeCleanly)
{
    SkylineSession session;
    EXPECT_NO_THROW(session.analyze());
    EXPECT_FALSE(session.renderAnalysis().empty());
}

TEST(Session, SetKnobsByName)
{
    SkylineSession session;
    session.set("sensor_framerate", "30");
    session.set("compute_tdp", "15");
    session.set("algorithm", "TrailNet");
    session.set("compute_runtime", "0.018");
    session.set("sensor_range", "4.5");
    session.set("drone_weight", "1200");
    session.set("rotor_pull", "2000");
    session.set("payload_weight", "300");
    session.set("control_rate", "500");
    session.set("knee_fraction", "0.95");

    const Knobs &knobs = session.knobs();
    EXPECT_DOUBLE_EQ(knobs.sensorFramerate.value(), 30.0);
    EXPECT_DOUBLE_EQ(knobs.computeTdp.value(), 15.0);
    EXPECT_EQ(knobs.algorithm, "TrailNet");
    EXPECT_DOUBLE_EQ(knobs.computeRuntime.value(), 0.018);
    EXPECT_DOUBLE_EQ(knobs.sensorRange.value(), 4.5);
    EXPECT_DOUBLE_EQ(knobs.droneWeight.value(), 1200.0);
    EXPECT_DOUBLE_EQ(knobs.rotorPull.value(), 2000.0);
    EXPECT_DOUBLE_EQ(knobs.payloadWeight.value(), 300.0);
    EXPECT_DOUBLE_EQ(knobs.controlRate.value(), 500.0);
    EXPECT_DOUBLE_EQ(knobs.kneeFraction, 0.95);
}

TEST(Session, KnobNameIsCaseInsensitiveAndTrimmed)
{
    SkylineSession session;
    session.set("  Sensor_Framerate ", " 120 ");
    EXPECT_DOUBLE_EQ(session.knobs().sensorFramerate.value(), 120.0);
}

TEST(Session, RejectsUnknownKnobAndBadValues)
{
    SkylineSession session;
    EXPECT_THROW(session.set("warp_drive", "9"), ModelError);
    EXPECT_THROW(session.set("compute_tdp", "alot"), ModelError);
    EXPECT_THROW(session.set("compute_tdp", "30W"), ModelError);
    EXPECT_THROW(session.set("compute_tdp", "-3"), ModelError);
    EXPECT_EQ(SkylineSession::knobNames().size(), 13u);
}

TEST(Session, PlatformKnobRoutesComputeThroughTheCeilingFamily)
{
    SkylineSession session;
    EXPECT_FALSE(session.rooflinePlatform().has_value());

    session.set("platform", "Nvidia TX2");
    ASSERT_TRUE(session.rooflinePlatform().has_value());
    const auto model = session.model();
    // DroNet (default algorithm) at the nominal point: the oracle's
    // measured 178 Hz wins over the modeled bound (measured-first),
    // so the rate is a measurement with no binding ceiling.
    EXPECT_DOUBLE_EQ(model.inputs().computeRate.value(), 178.0);
    EXPECT_FALSE(model.inputs().computeBinding.attributed);
    EXPECT_TRUE(session.analyze().bindingCeiling.empty());

    // Off the measured (nominal) point the roofline bound takes
    // over: GPU roof 1330 GOPS * 0.5 clock / 0.04 GOP per frame,
    // attributed to the binding ceiling.
    session.set("operating_point", "half-clock");
    const auto scaled = session.model();
    EXPECT_DOUBLE_EQ(scaled.inputs().computeRate.value(),
                     0.5 * 1330.0 / 0.04);
    ASSERT_TRUE(scaled.inputs().computeBinding.attributed);
    EXPECT_EQ(session.rooflinePlatform()->ceilingName(
                  scaled.inputs().computeBinding),
              "Pascal GPU FP16");

    // The analysis resolves the binding ceiling by name and the
    // rendered text reports the platform line.
    const Analysis analysis = session.analyze();
    EXPECT_EQ(analysis.bindingCeiling, "compute 'Pascal GPU FP16'");
    EXPECT_NE(session.renderAnalysis().find("Nvidia TX2"),
              std::string::npos);
    session.set("operating_point", "");

    // An annotated scalar-only kernel binds a non-top compute
    // ceiling through the very same knob path.
    session.set("algorithm", "DroNet (scalar-only)");
    EXPECT_EQ(session.analyze().bindingCeiling,
              "compute 'Denver2/A57 scalar'");

    // Clearing the knob returns to the compute_runtime path.
    session.set("platform", "");
    EXPECT_FALSE(session.model().inputs().computeBinding.attributed);
}

TEST(Session, OperatingPointScalesRateAndTdp)
{
    SkylineSession session;
    session.set("platform", "Nvidia TX2");
    // The nominal point carries DroNet's measured 178 Hz
    // (measured-first); scaled points have no measured row, so the
    // roofline bound governs and scales with the clock.
    EXPECT_DOUBLE_EQ(session.model().inputs().computeRate.value(),
                     178.0);
    const double nominal_heatsink = session.heatsinkMass().value();
    EXPECT_DOUBLE_EQ(session.effectiveTdp().value(), 7.5);

    session.set("operating_point", "half-clock");
    EXPECT_DOUBLE_EQ(session.model().inputs().computeRate.value(),
                     0.5 * 1330.0 / 0.04);
    // The CMOS law TDP at half clock is far below half: the heat
    // sink shrinks with it (the dvfs study quantifies the curve).
    EXPECT_LT(session.effectiveTdp().value(), 7.5 / 2.0);
    EXPECT_LT(session.heatsinkMass().value(), nominal_heatsink);

    // Unknown operating points are validated lazily (platform and
    // point may be set in either order), at model time.
    session.set("operating_point", "warp");
    EXPECT_THROW(session.model(), ModelError);
}

TEST(Session, PlatformKnobValidatesEagerlyWithSuggestions)
{
    SkylineSession session;
    try {
        session.set("platform", "Nvidia TX3");
        FAIL() << "expected ModelError";
    } catch (const ModelError &e) {
        EXPECT_NE(std::string(e.what()).find("did you mean"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("Nvidia TX2"),
                  std::string::npos);
    }
    // Unknown algorithm on the platform path fails at model time,
    // listing the catalog.
    session.set("platform", "Nvidia TX2");
    session.set("algorithm", "MysteryNet");
    EXPECT_THROW(session.model(), ModelError);

    // Non-numeric knobs cannot be swept.
    EXPECT_THROW(session.sweep("platform", 0.0, 1.0, 3), ModelError);
    EXPECT_THROW(session.sweep("operating_point", 0.0, 1.0, 3),
                 ModelError);
}

TEST(Session, PlatformKnobsRoundTripThroughConfig)
{
    SkylineSession session;
    // Legacy sessions keep their exact config bytes: no platform
    // lines unless the knobs are set.
    EXPECT_EQ(session.saveConfig().find("platform"),
              std::string::npos);

    session.set("platform", "Nvidia TX2");
    session.set("operating_point", "dvfs-floor");
    SkylineSession restored;
    restored.loadConfig(session.saveConfig());
    EXPECT_EQ(restored.saveConfig(), session.saveConfig());
    EXPECT_EQ(restored.knobs().platform, "Nvidia TX2");
    EXPECT_EQ(restored.knobs().operatingPoint, "dvfs-floor");
}

TEST(Session, PipelineKnobSelectsRegistryEntry)
{
    SkylineSession session;
    session.set("platform", "Nvidia TX2");
    session.set("algorithm", "SPA package delivery");
    // Default: the algorithm's standard pipeline — the paper's
    // 909 ms MAVBench baseline at 1.1 Hz.
    EXPECT_NEAR(session.model().inputs().computeRate.value(), 1.1,
                0.01);

    // Selecting the Navion variant swaps the SLAM stage for the
    // 172 FPS kernel: 810 ms end-to-end, 1.23 Hz (Section VII).
    session.set("pipeline",
                "MAVBench package delivery (TX2) + Navion SLAM");
    EXPECT_NEAR(session.model().inputs().computeRate.value(), 1.2346,
                0.001);
    const Analysis analysis = session.analyze();
    ASSERT_FALSE(analysis.stages.empty());
    bool found_slam = false;
    for (const auto &row : analysis.stages) {
        if (row.stage == "SLAM") {
            found_slam = true;
            EXPECT_NEAR(row.latencyMs, 1000.0 / 172.0, 1e-6);
            EXPECT_FALSE(row.bottleneck);
        }
    }
    EXPECT_TRUE(found_slam);

    // The knob overrides the algorithm mapping outright: DroNet has
    // no standard pipeline, but the explicit selection evaluates
    // anyway (instead of the oracle's measured 178 Hz).
    session.set("algorithm", "DroNet");
    EXPECT_NEAR(session.model().inputs().computeRate.value(), 1.2346,
                0.001);

    // Clearing the knob returns to the algorithm mapping.
    session.set("pipeline", "");
    EXPECT_DOUBLE_EQ(session.model().inputs().computeRate.value(),
                     178.0);
}

TEST(Session, PipelineKnobValidatesEagerlyWithSuggestions)
{
    SkylineSession session;
    try {
        session.set("pipeline", "MAVBench package delivery (TX3)");
        FAIL() << "expected ModelError";
    } catch (const ModelError &e) {
        EXPECT_NE(std::string(e.what()).find("did you mean"),
                  std::string::npos);
        EXPECT_NE(
            std::string(e.what()).find(
                "MAVBench package delivery (TX2)"),
            std::string::npos);
    }
    // The knob never landed, so the session is unchanged.
    EXPECT_TRUE(session.knobs().pipeline.empty());
    // Config-grammar characters are rejected up front, and the
    // non-numeric knob cannot be swept.
    EXPECT_THROW(session.set("pipeline", "bad # name"), ModelError);
    EXPECT_THROW(session.sweep("pipeline", 0.0, 1.0, 3), ModelError);
}

TEST(Session, PipelineKnobRoundTripsThroughConfig)
{
    SkylineSession session;
    // No pipeline line unless the knob is set.
    EXPECT_EQ(session.saveConfig().find("pipeline"),
              std::string::npos);

    session.set("platform", "Nvidia TX2");
    session.set("algorithm", "SPA package delivery");
    session.set("pipeline",
                "MAVBench package delivery (TX2) + Navion SLAM");
    SkylineSession restored;
    restored.loadConfig(session.saveConfig());
    EXPECT_EQ(restored.saveConfig(), session.saveConfig());
    EXPECT_EQ(restored.knobs().pipeline,
              "MAVBench package delivery (TX2) + Navion SLAM");
}

TEST(Session, SweepCarriesBindingAttribution)
{
    SkylineSession session;
    session.set("platform", "Nvidia TX2");
    // At the nominal point every sweep sample carries the measured
    // throughput, so the binding stays unattributed.
    for (const auto &point :
         session.sweep("sensor_range", 1.0, 6.0, 5)) {
        ASSERT_TRUE(point.feasible);
        EXPECT_FALSE(point.binding.attributed);
    }
    // A scaled operating point routes through the roofline bound,
    // and the binding ceiling rides along on every point.
    session.set("operating_point", "half-clock");
    const auto points =
        session.sweep("sensor_range", 1.0, 6.0, 5);
    for (const auto &point : points) {
        ASSERT_TRUE(point.feasible);
        EXPECT_TRUE(point.binding.attributed);
        EXPECT_EQ(session.rooflinePlatform()->ceilingName(
                      point.binding),
                  "Pascal GPU FP16");
    }
    // Legacy sweeps stay unattributed.
    SkylineSession legacy;
    for (const auto &point :
         legacy.sweep("sensor_range", 1.0, 6.0, 5)) {
        EXPECT_FALSE(point.binding.attributed);
    }
}

TEST(Session, HeatsinkFollowsTdpKnob)
{
    SkylineSession session;
    session.set("compute_tdp", "30");
    EXPECT_NEAR(session.heatsinkMass().value(), 162.0, 0.5);
    session.set("compute_tdp", "15");
    EXPECT_NEAR(session.heatsinkMass().value(), 81.0, 0.5);
}

TEST(Session, TdpKnobMovesTheRoof)
{
    // The paper's core interactive insight: raising TDP adds
    // heat-sink weight, which lowers a_max and the roof.
    SkylineSession session;
    session.set("compute_tdp", "5");
    const double roof_light =
        session.analyze().f1.roofVelocity.value();
    session.set("compute_tdp", "30");
    const double roof_heavy =
        session.analyze().f1.roofVelocity.value();
    EXPECT_GT(roof_light, roof_heavy);
}

TEST(Session, ComputeBoundTipSuggestsSpeedup)
{
    SkylineSession session;
    session.set("compute_runtime", "1.0"); // 1 Hz: compute-bound.
    const Analysis analysis = session.analyze();
    EXPECT_EQ(analysis.f1.bound, core::BoundType::ComputeBound);
    ASSERT_FALSE(analysis.tips.empty());
    EXPECT_NE(analysis.tips[0].find("Compute-bound"),
              std::string::npos);
}

TEST(Session, SensorBoundTipSuggestsFasterSensor)
{
    SkylineSession session;
    session.set("sensor_framerate", "2");
    const Analysis analysis = session.analyze();
    EXPECT_EQ(analysis.f1.bound, core::BoundType::SensorBound);
    ASSERT_FALSE(analysis.tips.empty());
    EXPECT_NE(analysis.tips[0].find("Sensor-bound"),
              std::string::npos);
}

TEST(Session, PhysicsBoundTipQuantifiesTdpOpportunity)
{
    SkylineSession session; // Defaults: DroNet 178 Hz.
    // Remove the sensor limit so the compute margin over the knee
    // is plainly visible (f_action = 178 Hz >> knee).
    session.set("sensor_framerate", "240");
    const Analysis analysis = session.analyze();
    EXPECT_EQ(analysis.f1.bound, core::BoundType::PhysicsBound);
    // Over-provisioned: the second tip quantifies the TDP trade.
    ASSERT_GE(analysis.tips.size(), 2u);
    EXPECT_NE(analysis.tips[1].find("over-provisioned"),
              std::string::npos);
    EXPECT_NE(analysis.tips[1].find("heat sink"), std::string::npos);
}

TEST(Session, InfeasibleKnobsThrowInfeasible)
{
    SkylineSession session;
    session.set("payload_weight", "5000"); // Exceeds rotor pull.
    EXPECT_THROW(session.analyze(), InfeasibleError);
}

TEST(Session, SaveLoadRoundTrip)
{
    SkylineSession session;
    session.set("sensor_framerate", "30");
    session.set("compute_tdp", "15");
    session.set("algorithm", "TrailNet v2");
    session.set("compute_runtime", "0.018");
    session.set("sensor_range", "7.25");
    session.set("drone_weight", "1200");
    session.set("rotor_pull", "2000");
    session.set("payload_weight", "300");
    session.set("control_rate", "500");
    session.set("knee_fraction", "0.95");

    SkylineSession restored;
    restored.loadConfig(session.saveConfig());
    EXPECT_EQ(restored.saveConfig(), session.saveConfig());
    EXPECT_EQ(restored.knobs().algorithm, "TrailNet v2");
    EXPECT_DOUBLE_EQ(restored.knobs().computeRuntime.value(),
                     0.018);
    EXPECT_DOUBLE_EQ(restored.knobs().kneeFraction, 0.95);
}

TEST(Session, AlgorithmWhitespaceIsTrimmedAndRoundTrips)
{
    SkylineSession session;
    session.set("algorithm", "   DroNet variant  ");
    EXPECT_EQ(session.knobs().algorithm, "DroNet variant");

    SkylineSession restored;
    restored.loadConfig(session.saveConfig());
    EXPECT_EQ(restored.knobs().algorithm, "DroNet variant");
    EXPECT_EQ(restored.saveConfig(), session.saveConfig());
}

TEST(Session, AlgorithmRejectsValuesThatWouldNotRoundTrip)
{
    SkylineSession session;
    const std::string before = session.knobs().algorithm;
    // '#' would be re-read as a comment, a newline would split the
    // value across config lines: both must be rejected up front.
    EXPECT_THROW(session.set("algorithm", "DroNet # fast"),
                 ModelError);
    EXPECT_THROW(session.set("algorithm", "Dro\nNet"), ModelError);
    EXPECT_THROW(session.set("algorithm", "Dro\rNet"), ModelError);
    EXPECT_EQ(session.knobs().algorithm, before);
}

TEST(Session, SweepMarksValidationFailuresInfeasible)
{
    // drone_weight = 0 fails the knob's own requirePositive
    // validation; it must surface as an infeasible point, not
    // abort the whole sweep.
    SkylineSession session;
    const auto by_weight = session.sweep("drone_weight", 0.0,
                                         1000.0, 3);
    ASSERT_EQ(by_weight.size(), 3u);
    EXPECT_FALSE(by_weight[0].feasible);
    EXPECT_TRUE(by_weight[2].feasible);

    // knee_fraction sweeps ending exactly at 1.0 used to throw out
    // of the final point; now only that point is infeasible.
    const auto by_knee = session.sweep("knee_fraction", 0.5, 1.0,
                                       3);
    ASSERT_EQ(by_knee.size(), 3u);
    EXPECT_TRUE(by_knee[0].feasible);
    EXPECT_TRUE(by_knee[1].feasible);
    EXPECT_FALSE(by_knee[2].feasible);

    // Unknown knobs still fail loudly instead of yielding an
    // all-infeasible sweep.
    EXPECT_THROW(session.sweep("warp_drive", 0.0, 1.0, 3),
                 ModelError);
}

TEST(Report, TextContainsAllThreePanes)
{
    SkylineSession session;
    const std::string report =
        ReportWriter::text(session, "Skyline Report");
    EXPECT_NE(report.find("Skyline Report"), std::string::npos);
    EXPECT_NE(report.find("Sensor Framerate"), std::string::npos);
    EXPECT_NE(report.find("Rotor Pull"), std::string::npos);
    EXPECT_NE(report.find("Skyline analysis"), std::string::npos);
    EXPECT_NE(report.find("knee"), std::string::npos);
}

TEST(Report, HtmlIsSelfContained)
{
    SkylineSession session;
    const std::string html =
        ReportWriter::html(session, "Skyline Report");
    EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
    EXPECT_NE(html.find("<svg"), std::string::npos);
    EXPECT_NE(html.find("Analysis"), std::string::npos);
    EXPECT_NE(html.find("</html>"), std::string::npos);
}

/** A prototype builder shared by the DSE tests. */
core::UavConfig::Builder
dsePrototype()
{
    const auto catalog = components::Catalog::standard();
    core::UavConfig::Builder builder("dse");
    builder.airframe(catalog.airframes().byName("AscTec Pelican"))
        .sensor(catalog.sensors().byName("RGB-D 60FPS (4.5m)"));
    return builder;
}

TEST(Dse, SweepCoversTheCrossProduct)
{
    const auto catalog = components::Catalog::standard();
    const auto algorithms = workload::standardAlgorithms();
    const DesignSpaceExplorer dse(dsePrototype());
    const auto points = dse.sweep(
        {catalog.computes().byName("Nvidia TX2"),
         catalog.computes().byName("Intel NCS"),
         catalog.computes().byName("Ras-Pi4")},
        {algorithms.byName("DroNet"), algorithms.byName("TrailNet")});
    EXPECT_EQ(points.size(), 6u);
    int feasible = 0;
    for (const auto &point : points) {
        if (point.feasible)
            ++feasible;
    }
    EXPECT_GT(feasible, 0);
}

TEST(Dse, HeavyPlatformsComeOutInfeasibleNotCrashing)
{
    const auto catalog = components::Catalog::standard();
    const auto algorithms = workload::standardAlgorithms();

    // A nano-UAV cannot lift a TX2; the sweep must record that
    // instead of throwing.
    const auto nano_catalog = components::Catalog::standard();
    core::UavConfig::Builder builder("nano-dse");
    builder
        .airframe(nano_catalog.airframes().byName("Nano-UAV"))
        .sensor(nano_catalog.sensors().byName(
            "Nano camera 60FPS (6m)"));
    const DesignSpaceExplorer dse(builder);
    const auto points =
        dse.sweep({catalog.computes().byName("Nvidia TX2"),
                   catalog.computes().byName("PULP-GAP8")},
                  {algorithms.byName("DroNet")});
    ASSERT_EQ(points.size(), 2u);
    EXPECT_FALSE(points[0].feasible);
    EXPECT_FALSE(points[0].infeasibleReason.empty());
    EXPECT_TRUE(points[1].feasible);
}

TEST(Dse, ParetoFrontIsNonDominated)
{
    const auto catalog = components::Catalog::standard();
    const auto algorithms = workload::standardAlgorithms();
    const DesignSpaceExplorer dse(dsePrototype());
    const auto points = dse.sweep(
        {catalog.computes().byName("Nvidia TX2"),
         catalog.computes().byName("Intel NCS"),
         catalog.computes().byName("Ras-Pi4"),
         catalog.computes().byName("Nvidia AGX")},
        {algorithms.byName("DroNet")});
    const auto front = DesignSpaceExplorer::paretoFront(points);
    ASSERT_FALSE(front.empty());
    // No front member dominates another.
    for (const auto &a : front) {
        for (const auto &b : front) {
            const bool dominates =
                a.safeVelocity >= b.safeVelocity &&
                a.computePower <= b.computePower &&
                a.computeMass <= b.computeMass &&
                (a.safeVelocity > b.safeVelocity ||
                 a.computePower < b.computePower ||
                 a.computeMass < b.computeMass);
            EXPECT_FALSE(dominates)
                << a.compute << " dominates " << b.compute;
        }
    }
    // Sorted fastest-first.
    for (std::size_t i = 1; i < front.size(); ++i)
        EXPECT_GE(front[i - 1].safeVelocity, front[i].safeVelocity);
}

/** Shorthand for a feasible synthetic design point. */
DesignPoint
syntheticPoint(const std::string &name, double v, double power,
               double mass)
{
    DesignPoint point;
    point.compute = name;
    point.feasible = true;
    point.safeVelocity = v;
    point.computePower = power;
    point.computeMass = mass;
    return point;
}

TEST(Dse, ParetoFrontOrderingIsStable)
{
    // Duplicates survive together, dominated points drop out, and
    // the output is fastest-first with ties in input order.
    const std::vector<DesignPoint> points = {
        syntheticPoint("A", 10.0, 5.0, 5.0),
        syntheticPoint("B", 10.0, 5.0, 5.0), // Duplicate of A.
        syntheticPoint("C", 9.0, 6.0, 6.0),  // Dominated by A.
        syntheticPoint("D", 9.0, 4.0, 7.0),
        syntheticPoint("E", 8.0, 4.0, 7.0),  // Dominated by D.
        syntheticPoint("F", 8.0, 3.0, 8.0),
        syntheticPoint("G", 8.0, 3.0, 9.0),  // Dominated by F.
    };
    const auto front = DesignSpaceExplorer::paretoFront(points);
    ASSERT_EQ(front.size(), 4u);
    EXPECT_EQ(front[0].compute, "A");
    EXPECT_EQ(front[1].compute, "B");
    EXPECT_EQ(front[2].compute, "D");
    EXPECT_EQ(front[3].compute, "F");
}

TEST(Dse, ParetoFrontMatchesBruteForceOnTieHeavyInputs)
{
    // Small discrete coordinates force many exact ties, the regime
    // where a sort-then-sweep most easily diverges from the
    // all-pairs dominance definition.
    Rng rng(2024);
    std::vector<DesignPoint> points;
    for (int i = 0; i < 300; ++i) {
        DesignPoint point = syntheticPoint(
            "p" + std::to_string(i),
            std::floor(rng.uniform(0.0, 5.0)),
            std::floor(rng.uniform(0.0, 5.0)),
            std::floor(rng.uniform(0.0, 5.0)));
        point.feasible = (i % 17) != 0;
        points.push_back(point);
    }

    const auto dominates = [](const DesignPoint &a,
                              const DesignPoint &b) {
        return a.safeVelocity >= b.safeVelocity &&
               a.computePower <= b.computePower &&
               a.computeMass <= b.computeMass &&
               (a.safeVelocity > b.safeVelocity ||
                a.computePower < b.computePower ||
                a.computeMass < b.computeMass);
    };
    std::vector<std::string> expected;
    for (const auto &candidate : points) {
        if (!candidate.feasible)
            continue;
        bool dominated = false;
        for (const auto &other : points) {
            if (other.feasible && dominates(other, candidate)) {
                dominated = true;
                break;
            }
        }
        if (!dominated)
            expected.push_back(candidate.compute);
    }

    const auto front = DesignSpaceExplorer::paretoFront(points);
    std::vector<std::string> got;
    for (const auto &point : front)
        got.push_back(point.compute);
    std::sort(expected.begin(), expected.end());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected);
}

TEST(Dse, SweepIsIdenticalAtAnyThreadCount)
{
    const auto catalog = components::Catalog::standard();
    const auto algorithms = workload::standardAlgorithms();
    const DesignSpaceExplorer dse(dsePrototype());
    const std::vector<components::ComputePlatform> computes = {
        catalog.computes().byName("Nvidia TX2"),
        catalog.computes().byName("Intel NCS"),
        catalog.computes().byName("Ras-Pi4"),
        catalog.computes().byName("Nvidia AGX")};
    const std::vector<workload::AutonomyAlgorithm> algos = {
        algorithms.byName("DroNet"), algorithms.byName("TrailNet")};

    exec::ThreadPool pool1(1);
    exec::ThreadPool pool8(8);
    const auto a = dse.sweep(computes, algos, {.pool = &pool1});
    const auto b = dse.sweep(computes, algos, {.pool = &pool8});
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].compute, b[i].compute);
        EXPECT_EQ(a[i].algorithm, b[i].algorithm);
        EXPECT_EQ(a[i].feasible, b[i].feasible);
        EXPECT_EQ(a[i].safeVelocity, b[i].safeVelocity);
        EXPECT_EQ(a[i].computePower, b[i].computePower);
        EXPECT_EQ(a[i].computeMass, b[i].computeMass);
    }
}

TEST(Dse, BestPicksHighestVelocity)
{
    const auto catalog = components::Catalog::standard();
    const auto algorithms = workload::standardAlgorithms();
    const DesignSpaceExplorer dse(dsePrototype());
    const auto points = dse.sweep(
        {catalog.computes().byName("Nvidia TX2"),
         catalog.computes().byName("Ras-Pi4")},
        {algorithms.byName("DroNet")});
    const auto &best = DesignSpaceExplorer::best(points);
    for (const auto &point : points) {
        if (point.feasible) {
            EXPECT_GE(best.safeVelocity, point.safeVelocity);
        }
    }
    EXPECT_THROW(DesignSpaceExplorer::best({}), ModelError);
}

} // namespace
