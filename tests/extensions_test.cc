/**
 * @file
 * Tests for the extension modules that implement the paper's
 * prescribed-but-unevaluated remedies: DVFS derating, redundancy
 * reliability, momentum-theory hover power, and the Skyline knob
 * sweep.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "components/catalog.hh"
#include "core/safety_model.hh"
#include "physics/rotor_aero.hh"
#include "pipeline/reliability.hh"
#include "sim/monte_carlo.hh"
#include "skyline/session.hh"
#include "studies/presets.hh"
#include "support/errors.hh"
#include "workload/dvfs.hh"
#include "workload/latency_trace.hh"
#include "workload/throughput.hh"

namespace {

using namespace uavf1;
using namespace uavf1::units;
using namespace uavf1::units::literals;

TEST(Dvfs, FullFrequencyKeepsNominalTdp)
{
    const workload::DvfsModel dvfs;
    EXPECT_NEAR(dvfs.scaledTdp(30.0_w, 1.0).value(), 30.0, 1e-12);
}

TEST(Dvfs, CubicScalingWithLeakageFloor)
{
    // alpha = 3, 10% leakage: at half frequency,
    // P = 0.1 * 30 + 0.9 * 30 * 0.125 = 3 + 3.375.
    const workload::DvfsModel dvfs;
    EXPECT_NEAR(dvfs.scaledTdp(30.0_w, 0.5).value(), 6.375, 1e-9);
}

TEST(Dvfs, LinearExponentVariant)
{
    workload::DvfsModel::Params params;
    params.exponent = 1.0;
    params.leakageFraction = 0.0;
    const workload::DvfsModel dvfs(params);
    EXPECT_NEAR(dvfs.scaledTdp(30.0_w, 0.5).value(), 15.0, 1e-9);
}

TEST(Dvfs, DerateToThroughputShrinksHeatsink)
{
    // The paper's Fig. 14 remedy: a TX2 at ~1/5 throughput fits a
    // far smaller power/heat-sink envelope.
    const auto catalog = components::Catalog::standard();
    const auto &tx2 = catalog.computes().byName("Nvidia TX2");
    const workload::DvfsModel dvfs;

    const auto derated = dvfs.derateToThroughput(
        tx2, Hertz(178.0), Hertz(43.0), " @knee");
    EXPECT_EQ(derated.name(), "Nvidia TX2 @knee");
    EXPECT_LT(derated.tdp().value(), tx2.tdp().value() / 3.0);

    const thermal::HeatsinkModel heatsink;
    EXPECT_LT(derated.heatsinkMass(heatsink).value(),
              tx2.heatsinkMass(heatsink).value());
}

TEST(Dvfs, RangeValidation)
{
    const workload::DvfsModel dvfs;
    EXPECT_THROW(dvfs.scaledTdp(30.0_w, 0.05), ModelError);
    EXPECT_THROW(dvfs.scaledTdp(30.0_w, 1.5), ModelError);
    const auto catalog = components::Catalog::standard();
    const auto &tx2 = catalog.computes().byName("Nvidia TX2");
    EXPECT_THROW(dvfs.derateToThroughput(tx2, Hertz(178.0),
                                         Hertz(300.0), "x"),
                 ModelError);
    workload::DvfsModel::Params bad;
    bad.exponent = 5.0;
    EXPECT_THROW(workload::DvfsModel{bad}, ModelError);
}

TEST(Reliability, ModuleSurvivalIsExponential)
{
    const pipeline::ReliabilityModel model(0.1); // 0.1 / hour.
    // One hour mission: exp(-0.1).
    EXPECT_NEAR(model.moduleSurvival(Seconds(3600.0)),
                std::exp(-0.1), 1e-12);
    // Zero-length mission never fails.
    EXPECT_DOUBLE_EQ(model.moduleSurvival(Seconds(0.0)), 1.0);
}

TEST(Reliability, TmrMasksOneFault)
{
    const pipeline::ReliabilityModel model(0.5);
    const Seconds mission(3600.0);
    const double p = model.moduleSurvival(mission);
    const double tmr = model.missionSuccess(
        pipeline::RedundancyScheme::Triple, mission);
    EXPECT_NEAR(tmr, p * p * p + 3.0 * p * p * (1.0 - p), 1e-12);
    // TMR beats simplex beats DMR on mission success (DMR aborts on
    // any single failure).
    const double simplex = model.missionSuccess(
        pipeline::RedundancyScheme::None, mission);
    const double dmr = model.missionSuccess(
        pipeline::RedundancyScheme::Dual, mission);
    EXPECT_GT(tmr, simplex);
    EXPECT_LT(dmr, simplex);
}

TEST(Reliability, RedundancyCutsUnsafeFailures)
{
    const pipeline::ReliabilityModel model(0.2);
    const Seconds mission(1800.0);
    const double simplex = model.unsafeFailure(
        pipeline::RedundancyScheme::None, mission);
    const double dmr = model.unsafeFailure(
        pipeline::RedundancyScheme::Dual, mission);
    const double tmr = model.unsafeFailure(
        pipeline::RedundancyScheme::Triple, mission);
    EXPECT_LT(dmr, simplex);
    EXPECT_LT(tmr, simplex);
    // DMR's detect-and-abort squares the unsafe probability.
    EXPECT_NEAR(dmr, simplex * simplex, 1e-12);
}

TEST(Reliability, RejectsBadRate)
{
    EXPECT_THROW(pipeline::ReliabilityModel(0.0), ModelError);
    EXPECT_THROW(pipeline::ReliabilityModel(-1.0), ModelError);
}

TEST(RotorAero, DiskAreaAndHoverPower)
{
    // 4 rotors of 0.24 m diameter: A = 4 * pi * 0.12^2.
    const physics::RotorAero aero(4, 0.24, 0.65);
    EXPECT_NEAR(aero.diskAreaM2(), 4.0 * M_PI * 0.12 * 0.12, 1e-12);

    // Ideal momentum theory, checked against the closed form.
    const Kilograms mass(1.2);
    const double weight = 1.2 * 9.80665;
    const double ideal = std::pow(weight, 1.5) /
                         std::sqrt(2.0 * 1.225 * aero.diskAreaM2());
    EXPECT_NEAR(aero.hoverPower(mass).value(), ideal / 0.65, 1e-9);
}

TEST(RotorAero, HeavierNeedsSuperlinearPower)
{
    const physics::RotorAero aero(4, 0.24);
    const double p1 = aero.hoverPower(1.0_kg).value();
    const double p2 = aero.hoverPower(2.0_kg).value();
    // P ~ m^1.5: doubling mass costs ~2.83x power.
    EXPECT_NEAR(p2 / p1, std::pow(2.0, 1.5), 1e-9);
}

TEST(RotorAero, EnduranceMatchesEnergyBudget)
{
    const physics::RotorAero aero(4, 0.24, 0.65);
    const Kilograms mass(1.0);
    const WattHours energy(44.4);
    const auto endurance =
        aero.hoverEndurance(mass, energy, Watts(5.0));
    const double total =
        aero.hoverPower(mass).value() + 5.0;
    EXPECT_NEAR(endurance.value(), 44.4 * 3600.0 / total, 1e-6);
}

TEST(RotorAero, RejectsBadArguments)
{
    EXPECT_THROW(physics::RotorAero(0, 0.24), ModelError);
    EXPECT_THROW(physics::RotorAero(4, -0.1), ModelError);
    EXPECT_THROW(physics::RotorAero(4, 0.24, 1.5), ModelError);
}

TEST(SkylineSweep, TdpSweepIsMonotoneInVelocity)
{
    const skyline::SkylineSession session;
    const auto points = session.sweep("compute_tdp", 2.0, 30.0, 8);
    ASSERT_EQ(points.size(), 8u);
    for (std::size_t i = 1; i < points.size(); ++i) {
        ASSERT_TRUE(points[i].feasible);
        // More TDP -> heavier heat sink -> lower roof.
        EXPECT_LT(points[i].roofVelocity,
                  points[i - 1].roofVelocity);
    }
    EXPECT_DOUBLE_EQ(points.front().knobValue, 2.0);
    EXPECT_DOUBLE_EQ(points.back().knobValue, 30.0);
}

TEST(SkylineSweep, PayloadSweepHitsInfeasibleRegion)
{
    const skyline::SkylineSession session;
    const auto points =
        session.sweep("payload_weight", 100.0, 4000.0, 12);
    bool saw_feasible = false;
    bool saw_infeasible = false;
    for (const auto &point : points) {
        saw_feasible |= point.feasible;
        saw_infeasible |= !point.feasible;
    }
    EXPECT_TRUE(saw_feasible);
    EXPECT_TRUE(saw_infeasible);
}

TEST(SkylineSweep, Validation)
{
    const skyline::SkylineSession session;
    EXPECT_THROW(session.sweep("algorithm", 0.0, 1.0, 4),
                 ModelError);
    EXPECT_THROW(session.sweep("compute_tdp", 1.0, 2.0, 1),
                 ModelError);
    EXPECT_THROW(session.sweep("bogus", 1.0, 2.0, 4), ModelError);
}

TEST(SkylineSweep, ReverseRangeWorks)
{
    const skyline::SkylineSession session;
    const auto points =
        session.sweep("sensor_range", 10.0, 2.0, 5);
    ASSERT_EQ(points.size(), 5u);
    EXPECT_DOUBLE_EQ(points.front().knobValue, 10.0);
    EXPECT_DOUBLE_EQ(points.back().knobValue, 2.0);
    // Shorter range -> lower roof.
    EXPECT_GT(points.front().roofVelocity,
              points.back().roofVelocity);
}

TEST(SessionConfig, SaveLoadRoundTrip)
{
    skyline::SkylineSession session;
    session.set("compute_tdp", "22.5");
    session.set("algorithm", "TrailNet");
    session.set("sensor_range", "7.25");

    skyline::SkylineSession restored;
    restored.loadConfig(session.saveConfig());
    EXPECT_DOUBLE_EQ(restored.knobs().computeTdp.value(), 22.5);
    EXPECT_EQ(restored.knobs().algorithm, "TrailNet");
    EXPECT_DOUBLE_EQ(restored.knobs().sensorRange.value(), 7.25);
    // The restored session produces the identical analysis.
    EXPECT_DOUBLE_EQ(
        restored.analyze().f1.safeVelocity.value(),
        session.analyze().f1.safeVelocity.value());
}

TEST(SessionConfig, LoadSkipsCommentsAndBlankLines)
{
    skyline::SkylineSession session;
    session.loadConfig("# comment\n\n  compute_tdp = 12\n");
    EXPECT_DOUBLE_EQ(session.knobs().computeTdp.value(), 12.0);
}

TEST(SessionConfig, LoadRejectsMalformedLines)
{
    skyline::SkylineSession session;
    EXPECT_THROW(session.loadConfig("compute_tdp 12"), ModelError);
    EXPECT_THROW(session.loadConfig("warp = 9"), ModelError);
}

TEST(LatencyTrace, FromSamplesStatistics)
{
    const workload::LatencyTrace trace(
        "t", {Seconds(0.1), Seconds(0.3), Seconds(0.2)});
    EXPECT_EQ(trace.size(), 3u);
    EXPECT_NEAR(trace.mean().value(), 0.2, 1e-12);
    EXPECT_NEAR(trace.worst().value(), 0.3, 1e-12);
    // Sorted ascending.
    EXPECT_DOUBLE_EQ(trace.sortedSeconds().front(), 0.1);
    EXPECT_DOUBLE_EQ(trace.sortedSeconds().back(), 0.3);
    // Percentiles interpolate: p50 is the middle sample.
    EXPECT_NEAR(trace.percentile(50.0).value(), 0.2, 1e-12);
    EXPECT_NEAR(trace.percentile(0.0).value(), 0.1, 1e-12);
    EXPECT_NEAR(trace.percentile(100.0).value(), 0.3, 1e-12);
}

TEST(LatencyTrace, SynthesizedLognormalHitsTargetMean)
{
    const auto trace = workload::LatencyTrace::synthesize(
        "planner", Seconds(0.9), 0.6, 20000, 42);
    EXPECT_NEAR(trace.mean().value(), 0.9, 0.02);
    // Heavy tail: p99 well above the mean.
    EXPECT_GT(trace.percentile(99.0).value(),
              1.5 * trace.mean().value());
    // Percentiles are monotone.
    double previous = 0.0;
    for (double p : {10.0, 50.0, 90.0, 99.0, 100.0}) {
        const double value = trace.percentile(p).value();
        EXPECT_GE(value, previous);
        previous = value;
    }
}

TEST(LatencyTrace, ZeroCvIsConstant)
{
    const auto trace = workload::LatencyTrace::synthesize(
        "const", Seconds(0.5), 0.0, 64, 1);
    EXPECT_NEAR(trace.percentile(0.0).value(), 0.5, 1e-12);
    EXPECT_NEAR(trace.percentile(100.0).value(), 0.5, 1e-12);
    EXPECT_NEAR(trace.meanThroughput().value(), 2.0, 1e-9);
}

TEST(LatencyTrace, DeterministicForSeed)
{
    const auto a = workload::LatencyTrace::synthesize(
        "a", Seconds(0.9), 0.6, 256, 7);
    const auto b = workload::LatencyTrace::synthesize(
        "b", Seconds(0.9), 0.6, 256, 7);
    EXPECT_EQ(a.sortedSeconds(), b.sortedSeconds());
}

TEST(LatencyTrace, ScaledByAndValidation)
{
    const auto trace = workload::LatencyTrace::synthesize(
        "t", Seconds(0.2), 0.3, 128, 3);
    const auto slower = trace.scaledBy(2.0, " (slow host)");
    EXPECT_NEAR(slower.mean().value(), 2.0 * trace.mean().value(),
                1e-12);
    EXPECT_THROW(trace.scaledBy(0.0, "x"), ModelError);
    EXPECT_THROW(trace.percentile(101.0), ModelError);
    EXPECT_THROW(workload::LatencyTrace("empty", {}), ModelError);
    EXPECT_THROW(
        workload::LatencyTrace("neg", {Seconds(-0.1)}), ModelError);
}

TEST(LatencyTrace, TailSizingLowersSafeVelocity)
{
    // The ablation's core claim as a test: p99 sizing never exceeds
    // mean sizing in safe velocity.
    const auto trace = workload::LatencyTrace::synthesize(
        "planner", Seconds(0.9), 0.6, 4096, 7);
    const core::SafetyModel safety(MetersPerSecondSquared(4.12),
                                   Meters(2.73));
    const double v_mean =
        safety.safeVelocityAtRate(trace.meanThroughput()).value();
    const double v_p99 =
        safety.safeVelocityAtRate(trace.percentileThroughput(99.0))
            .value();
    EXPECT_LT(v_p99, v_mean);
}

TEST(OracleCsv, RoundTrip)
{
    const auto original = workload::ThroughputOracle::standard();
    const auto restored =
        workload::ThroughputOracle::fromCsv(original.toCsv());
    EXPECT_DOUBLE_EQ(
        restored.measured("DroNet", "Nvidia TX2").value(), 178.0);
    EXPECT_DOUBLE_EQ(
        restored.measured("CAD2RL", "Ras-Pi4").value(), 0.0652);
    EXPECT_TRUE(
        restored.hasMeasurement("SPA package delivery",
                                "Nvidia TX2"));
}

TEST(OracleCsv, ParsesCommentsAndWhitespace)
{
    const auto oracle = workload::ThroughputOracle::fromCsv(
        "# my measurements\n"
        "algorithm,platform,throughput_hz\n"
        "\n"
        "  MyNet ,  MyChip , 42.5 \n");
    EXPECT_DOUBLE_EQ(oracle.measured("MyNet", "MyChip").value(),
                     42.5);
}

TEST(OracleCsv, RejectsMalformedInput)
{
    EXPECT_THROW(workload::ThroughputOracle::fromCsv(""),
                 ModelError);
    EXPECT_THROW(workload::ThroughputOracle::fromCsv(
                     "algorithm,platform,throughput_hz\na,b\n"),
                 ModelError);
    EXPECT_THROW(workload::ThroughputOracle::fromCsv(
                     "algorithm,platform,throughput_hz\n"
                     "a,b,not-a-number\n"),
                 ModelError);
    EXPECT_THROW(workload::ThroughputOracle::fromCsv(
                     "x,y,z\na,b,1\n"),
                 ModelError);
}

TEST(MonteCarlo, ZeroUncertaintyCollapsesToNominal)
{
    sim::UncertaintySpec spec;
    spec.nominal = studies::pelicanInputs(units::Hertz(178.0));
    spec.aMaxRelStd = 0.0;
    spec.rangeRelStd = 0.0;
    spec.computeRelStd = 0.0;
    const auto result =
        sim::MonteCarloAnalyzer(spec).run(100, 1);
    const auto nominal =
        core::F1Model(spec.nominal).analyze();
    EXPECT_NEAR(result.safeVelocity.mean,
                nominal.safeVelocity.value(), 1e-12);
    EXPECT_NEAR(result.safeVelocity.stddev, 0.0, 1e-12);
    EXPECT_DOUBLE_EQ(result.probPhysicsBound, 1.0);
}

TEST(MonteCarlo, UnbiasedPerturbations)
{
    // E[factor] = 1 by construction: the output mean should sit
    // near the nominal for mild uncertainty.
    sim::UncertaintySpec spec;
    spec.nominal = studies::pelicanInputs(units::Hertz(178.0));
    const auto result =
        sim::MonteCarloAnalyzer(spec).run(40000, 3);
    const double nominal_v =
        core::F1Model(spec.nominal).analyze().safeVelocity.value();
    EXPECT_NEAR(result.safeVelocity.mean, nominal_v,
                0.02 * nominal_v);
    // Percentiles are ordered.
    EXPECT_LE(result.safeVelocity.p5, result.safeVelocity.p50);
    EXPECT_LE(result.safeVelocity.p50, result.safeVelocity.p95);
    // Bound probabilities sum to one.
    EXPECT_NEAR(result.probComputeBound + result.probSensorBound +
                    result.probControlBound +
                    result.probPhysicsBound,
                1.0, 1e-12);
}

TEST(MonteCarlo, MarginalDesignsAreUncertain)
{
    // TrailNet sits 1.27x past the knee: input noise must produce
    // a non-trivial compute-bound probability.
    sim::UncertaintySpec spec;
    spec.nominal = studies::pelicanInputs(units::Hertz(55.0));
    const auto result =
        sim::MonteCarloAnalyzer(spec).run(20000, 5);
    EXPECT_GT(result.probComputeBound, 0.01);
    EXPECT_GT(result.probPhysicsBound, 0.5);
    // A robust design (DroNet's 4.1x margin) is near-certain.
    sim::UncertaintySpec robust;
    robust.nominal = studies::pelicanInputs(units::Hertz(178.0));
    const auto robust_result =
        sim::MonteCarloAnalyzer(robust).run(20000, 5);
    EXPECT_GT(robust_result.probPhysicsBound,
              result.probPhysicsBound);
}

TEST(MonteCarlo, DeterministicForSeed)
{
    sim::UncertaintySpec spec;
    spec.nominal = studies::pelicanInputs(units::Hertz(55.0));
    const sim::MonteCarloAnalyzer analyzer(spec);
    const auto a = analyzer.run(500, 9);
    const auto b = analyzer.run(500, 9);
    EXPECT_DOUBLE_EQ(a.safeVelocity.mean, b.safeVelocity.mean);
    EXPECT_DOUBLE_EQ(a.probComputeBound, b.probComputeBound);
}

TEST(MonteCarlo, Validation)
{
    sim::UncertaintySpec spec;
    spec.nominal = studies::pelicanInputs(units::Hertz(55.0));
    EXPECT_THROW(sim::MonteCarloAnalyzer(spec).run(5, 1),
                 ModelError);
    spec.aMaxRelStd = -0.1;
    EXPECT_THROW(sim::MonteCarloAnalyzer{spec}, ModelError);
    EXPECT_THROW(sim::Distribution::fromSamples({}), ModelError);
}

} // namespace
