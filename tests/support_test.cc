/**
 * @file
 * Unit tests for the support library: errors, validation, RNG,
 * strings and text tables.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "support/errors.hh"
#include "support/rng.hh"
#include "support/strings.hh"
#include "support/table.hh"
#include "support/validate.hh"

namespace {

using namespace uavf1;

TEST(Validate, PositiveAcceptsAndRejects)
{
    EXPECT_DOUBLE_EQ(requirePositive(2.0, "x"), 2.0);
    EXPECT_THROW(requirePositive(0.0, "x"), ModelError);
    EXPECT_THROW(requirePositive(-1.0, "x"), ModelError);
}

TEST(Validate, ErrorMessageNamesParameter)
{
    try {
        requirePositive(-1.0, "rotor_pull");
        FAIL() << "expected ModelError";
    } catch (const ModelError &e) {
        EXPECT_NE(std::string(e.what()).find("rotor_pull"),
                  std::string::npos);
    }
}

TEST(Validate, NonNegativeAndRange)
{
    EXPECT_DOUBLE_EQ(requireNonNegative(0.0, "x"), 0.0);
    EXPECT_THROW(requireNonNegative(-0.1, "x"), ModelError);
    EXPECT_DOUBLE_EQ(requireInRange(0.5, 0.0, 1.0, "x"), 0.5);
    EXPECT_THROW(requireInRange(1.5, 0.0, 1.0, "x"), ModelError);
    EXPECT_THROW(requireInRange(-0.5, 0.0, 1.0, "x"), ModelError);
}

TEST(Validate, FiniteRejectsNanAndInf)
{
    EXPECT_THROW(requireFinite(std::nan(""), "x"), ModelError);
    EXPECT_THROW(requireFinite(1e301, "x"), ModelError);
    EXPECT_DOUBLE_EQ(requireFinite(42.0, "x"), 42.0);
}

TEST(Errors, InfeasibleIsAModelError)
{
    EXPECT_THROW(throw InfeasibleError("t/w too low"), ModelError);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.nextU64() == b.nextU64())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInHalfOpenUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeAndMean)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform(2.0, 4.0);
        EXPECT_GE(u, 2.0);
        EXPECT_LT(u, 4.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Rng, NormalMomentsApproximatelyStandard)
{
    Rng rng(13);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 40000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng parent(99);
    Rng child = parent.fork();
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 32; ++i) {
        seen.insert(parent.nextU64());
        seen.insert(child.nextU64());
    }
    EXPECT_EQ(seen.size(), 64u);
}

TEST(Strings, StrFormat)
{
    EXPECT_EQ(strFormat("%d-%s", 7, "x"), "7-x");
    EXPECT_EQ(strFormat("%.2f", 3.14159), "3.14");
    EXPECT_EQ(strFormat("empty"), "empty");
}

TEST(Strings, TrimmedNumber)
{
    EXPECT_EQ(trimmedNumber(3.0), "3");
    EXPECT_EQ(trimmedNumber(2.130, 3), "2.13");
    EXPECT_EQ(trimmedNumber(0.5), "0.5");
    EXPECT_EQ(trimmedNumber(-1.250, 3), "-1.25");
}

TEST(Strings, JoinPadTrim)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ", "), "");
    EXPECT_EQ(padLeft("x", 3), "  x");
    EXPECT_EQ(padRight("x", 3), "x  ");
    EXPECT_EQ(padLeft("xyz", 2), "xyz");
    EXPECT_EQ(trim("  a b  "), "a b");
    EXPECT_EQ(toLower("DroNet"), "dronet");
}

TEST(Strings, SplitAndTrim)
{
    const auto parts = splitAndTrim(" a , b ,c ", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "b");
    EXPECT_EQ(parts[2], "c");
}

TEST(Strings, EditDistance)
{
    EXPECT_EQ(editDistance("", ""), 0u);
    EXPECT_EQ(editDistance("abc", ""), 3u);
    EXPECT_EQ(editDistance("", "abc"), 3u);
    EXPECT_EQ(editDistance("fig09", "fig09"), 0u);
    EXPECT_EQ(editDistance("fig9", "fig09"), 1u);   // insertion
    EXPECT_EQ(editDistance("fig09", "fig05"), 1u);  // substitution
    EXPECT_EQ(editDistance("roofline", "rofline"), 1u); // deletion
    EXPECT_EQ(editDistance("kitten", "sitting"), 3u);
}

TEST(Strings, ClosestMatches)
{
    const std::vector<std::string> studies = {
        "fig02", "fig04", "fig05", "roofline", "sweep", "table2"};

    // Prefix matches come first, in candidate order.
    const auto prefixed = closestMatches("fig", studies);
    ASSERT_EQ(prefixed.size(), 3u);
    EXPECT_EQ(prefixed[0], "fig02");
    EXPECT_EQ(prefixed[2], "fig05");

    // Near misses rank by edit distance.
    const auto typo = closestMatches("rofline", studies);
    ASSERT_FALSE(typo.empty());
    EXPECT_EQ(typo[0], "roofline");

    const auto sweeps = closestMatches("sweeep", studies);
    ASSERT_FALSE(sweeps.empty());
    EXPECT_EQ(sweeps[0], "sweep");

    // Nothing plausibly close: empty, not noise.
    EXPECT_TRUE(closestMatches("quaternion", studies).empty());
}

TEST(TextTable, RendersAlignedRows)
{
    TextTable table({"UAV", "v (m/s)"});
    table.addRow({"UAV-A", "2.13"});
    table.addRow({"UAV-B", "1.5"});
    const std::string out = table.render();
    EXPECT_NE(out.find("| UAV-A | 2.13    |"), std::string::npos);
    EXPECT_NE(out.find("|-------|---------|"), std::string::npos);
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(TextTable, RejectsArityMismatchAndEmptyHeader)
{
    TextTable table({"a", "b"});
    EXPECT_THROW(table.addRow({"only-one"}), ModelError);
    EXPECT_THROW(TextTable({}), ModelError);
}

} // namespace
