/**
 * @file
 * Unit tests for the parallel sweep engine: chunk coverage, edge
 * cases, exception propagation, and the bit-exact determinism
 * contract that the Monte-Carlo and DSE sweeps rely on at any
 * thread count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <thread>
#include <vector>

#include "exec/cancellation.hh"

#include "exec/parallel.hh"
#include "exec/thread_pool.hh"
#include "sim/monte_carlo.hh"
#include "studies/presets.hh"
#include "support/errors.hh"

namespace {

using namespace uavf1;

TEST(ThreadPool, RequiresAtLeastOneThread)
{
    EXPECT_THROW(exec::ThreadPool(0), ModelError);
}

TEST(ThreadPool, ThreadCountIncludesTheCaller)
{
    exec::ThreadPool solo(1);
    EXPECT_EQ(solo.threadCount(), 1u);
    exec::ThreadPool quad(4);
    EXPECT_EQ(quad.threadCount(), 4u);
}

/** Sets UAVF1_THREADS for one test and restores it afterwards. */
class ThreadsEnvGuard
{
  public:
    explicit ThreadsEnvGuard(const char *value)
    {
        if (const char *old = std::getenv("UAVF1_THREADS"))
            _saved = old;
        if (value)
            setenv("UAVF1_THREADS", value, 1);
        else
            unsetenv("UAVF1_THREADS");
    }
    ~ThreadsEnvGuard()
    {
        if (_saved.empty())
            unsetenv("UAVF1_THREADS");
        else
            setenv("UAVF1_THREADS", _saved.c_str(), 1);
    }

  private:
    std::string _saved;
};

TEST(ThreadPool, DefaultThreadCountHonoursValidEnv)
{
    ThreadsEnvGuard guard("4");
    EXPECT_EQ(exec::ThreadPool::defaultThreadCount(), 4u);
}

TEST(ThreadPool, DefaultThreadCountRejectsNonNumericEnv)
{
    ThreadsEnvGuard guard("abc");
    EXPECT_THROW(exec::ThreadPool::defaultThreadCount(),
                 ModelError);
}

TEST(ThreadPool, DefaultThreadCountRejectsTrailingGarbage)
{
    ThreadsEnvGuard guard("4x");
    EXPECT_THROW(exec::ThreadPool::defaultThreadCount(),
                 ModelError);
}

TEST(ThreadPool, DefaultThreadCountRejectsZeroAndNegative)
{
    {
        ThreadsEnvGuard guard("0");
        EXPECT_THROW(exec::ThreadPool::defaultThreadCount(),
                     ModelError);
    }
    {
        ThreadsEnvGuard guard("-3");
        EXPECT_THROW(exec::ThreadPool::defaultThreadCount(),
                     ModelError);
    }
}

TEST(ThreadPool, DefaultThreadCountClampsAbsurdValues)
{
    ThreadsEnvGuard guard("999999999");
    EXPECT_EQ(exec::ThreadPool::defaultThreadCount(), 1024u);
}

TEST(ThreadPool, DefaultThreadCountWithoutEnvIsPositive)
{
    ThreadsEnvGuard guard(nullptr);
    EXPECT_GE(exec::ThreadPool::defaultThreadCount(), 1u);
}

TEST(Cancellation, DefaultTokenIsInert)
{
    exec::CancellationToken token;
    EXPECT_FALSE(token.armed());
    EXPECT_FALSE(token.cancelRequested());
    EXPECT_FALSE(token.deadlineExpired());
    EXPECT_NO_THROW(token.checkpoint());
}

TEST(Cancellation, RequestedTokenStopsAParallelLoop)
{
    exec::ThreadPool pool(4);
    exec::CancellationToken token =
        exec::CancellationToken::create();
    token.requestCancel();
    std::atomic<int> calls{0};
    EXPECT_THROW(
        exec::parallelFor(
            1000, [&](std::size_t, std::size_t) { ++calls; },
            {.pool = &pool, .grain = 8, .cancel = token}),
        CancelledError);
    // Cancellation is observed before the first chunk.
    EXPECT_EQ(calls.load(), 0);
}

TEST(Cancellation, DeadlineExpiresASlowParallelLoop)
{
    exec::ThreadPool pool(2);
    const exec::CancellationToken token =
        exec::CancellationToken::create().withDeadlineAfter(
            std::chrono::milliseconds(5));
    EXPECT_THROW(
        exec::parallelFor(
            1000,
            [&](std::size_t, std::size_t) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(2));
            },
            {.pool = &pool, .grain = 1, .cancel = token}),
        TimeoutError);
}

TEST(Cancellation, UntrippedTokenDoesNotPerturbResults)
{
    exec::ThreadPool pool(4);
    const exec::CancellationToken token =
        exec::CancellationToken::create();
    const auto with = exec::parallelMap<int>(
        100, [](std::size_t i) { return static_cast<int>(i); },
        {.pool = &pool, .cancel = token});
    const auto without = exec::parallelMap<int>(
        100, [](std::size_t i) { return static_cast<int>(i); },
        {.pool = &pool});
    EXPECT_EQ(with, without);
}

TEST(ParallelFor, ZeroItemsNeverInvokesTheBody)
{
    exec::ThreadPool pool(4);
    std::atomic<int> calls{0};
    exec::parallelFor(
        0, [&](std::size_t, std::size_t) { ++calls; },
        {.pool = &pool});
    EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, OneItemRunsExactlyOnce)
{
    exec::ThreadPool pool(4);
    std::vector<int> visits(1, 0);
    exec::parallelFor(
        1,
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i)
                ++visits[i];
        },
        {.pool = &pool});
    EXPECT_EQ(visits[0], 1);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    for (const std::size_t threads : {1u, 2u, 8u}) {
        exec::ThreadPool pool(threads);
        const std::size_t count = 1013; // Prime: ragged last chunk.
        std::vector<int> visits(count, 0);
        exec::parallelFor(
            count,
            [&](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i)
                    ++visits[i];
            },
            {.pool = &pool, .grain = 16});
        const int total =
            std::accumulate(visits.begin(), visits.end(), 0);
        EXPECT_EQ(total, static_cast<int>(count));
        for (std::size_t i = 0; i < count; ++i)
            ASSERT_EQ(visits[i], 1) << "index " << i;
    }
}

TEST(ParallelFor, ChunksAlignToTheGrain)
{
    exec::ThreadPool pool(4);
    std::atomic<bool> aligned{true};
    exec::parallelFor(
        95,
        [&](std::size_t begin, std::size_t end) {
            if (begin % 10 != 0 || (end - begin) > 10)
                aligned = false;
        },
        {.pool = &pool, .grain = 10});
    EXPECT_TRUE(aligned.load());
}

TEST(ParallelFor, PropagatesWorkerExceptionsToTheCaller)
{
    exec::ThreadPool pool(4);
    const auto boom = [](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            if (i == 37)
                throw ModelError("index 37 is cursed");
        }
    };
    EXPECT_THROW(
        exec::parallelFor(1000, boom, {.pool = &pool, .grain = 4}),
        ModelError);

    // The pool must stay usable after a failed loop.
    std::atomic<int> done{0};
    exec::parallelFor(
        100, [&](std::size_t begin,
                 std::size_t end) { done += int(end - begin); },
        {.pool = &pool});
    EXPECT_EQ(done.load(), 100);
}

TEST(ParallelMap, ReturnsResultsInIndexOrder)
{
    exec::ThreadPool pool(8);
    const auto squares = exec::parallelMap<int>(
        257, [](std::size_t i) { return static_cast<int>(i * i); },
        {.pool = &pool, .grain = 8});
    ASSERT_EQ(squares.size(), 257u);
    for (std::size_t i = 0; i < squares.size(); ++i)
        ASSERT_EQ(squares[i], static_cast<int>(i * i));
}

TEST(ParallelFor, NestedInvocationRunsSeriallyWithoutDeadlock)
{
    exec::ThreadPool pool(4);
    std::atomic<int> inner_total{0};
    exec::parallelFor(
        8,
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                exec::parallelFor(
                    10,
                    [&](std::size_t b, std::size_t e) {
                        inner_total += int(e - b);
                    },
                    {.pool = &pool});
            }
        },
        {.pool = &pool});
    EXPECT_EQ(inner_total.load(), 80);
}

/** Exact equality across every field of an UncertaintyResult. */
void
expectBitIdentical(const sim::UncertaintyResult &a,
                   const sim::UncertaintyResult &b)
{
    const auto expectSameDist = [](const sim::Distribution &x,
                                   const sim::Distribution &y) {
        EXPECT_EQ(x.mean, y.mean);
        EXPECT_EQ(x.stddev, y.stddev);
        EXPECT_EQ(x.p5, y.p5);
        EXPECT_EQ(x.p50, y.p50);
        EXPECT_EQ(x.p95, y.p95);
    };
    expectSameDist(a.safeVelocity, b.safeVelocity);
    expectSameDist(a.kneeThroughput, b.kneeThroughput);
    expectSameDist(a.roofVelocity, b.roofVelocity);
    EXPECT_EQ(a.probComputeBound, b.probComputeBound);
    EXPECT_EQ(a.probSensorBound, b.probSensorBound);
    EXPECT_EQ(a.probControlBound, b.probControlBound);
    EXPECT_EQ(a.probPhysicsBound, b.probPhysicsBound);
    EXPECT_EQ(a.samples, b.samples);
}

TEST(ExecMonteCarlo, BitIdenticalAcrossThreadCounts)
{
    sim::UncertaintySpec spec;
    spec.nominal = studies::pelicanInputs(units::Hertz(55.0));
    const sim::MonteCarloAnalyzer analyzer(spec);

    // Spans many sample blocks so the chunk decomposition is
    // genuinely exercised.
    const std::size_t count = 200000;
    exec::ThreadPool pool1(1);
    exec::ThreadPool pool2(2);
    exec::ThreadPool pool8(8);
    const auto serial = analyzer.run(count, 42, {.pool = &pool1});
    const auto twoway = analyzer.run(count, 42, {.pool = &pool2});
    const auto eightway = analyzer.run(count, 42, {.pool = &pool8});

    expectBitIdentical(serial, twoway);
    expectBitIdentical(serial, eightway);

    // And a different seed must actually change the stream.
    const auto reseeded = analyzer.run(count, 43, {.pool = &pool8});
    EXPECT_NE(serial.safeVelocity.mean, reseeded.safeVelocity.mean);
}

TEST(ExecMonteCarlo, ThreadCapFallsBackToSerial)
{
    sim::UncertaintySpec spec;
    spec.nominal = studies::pelicanInputs(units::Hertz(55.0));
    const sim::MonteCarloAnalyzer analyzer(spec);
    exec::ThreadPool pool(8);
    const auto capped =
        analyzer.run(5000, 7, {.pool = &pool, .maxThreads = 1});
    const auto full = analyzer.run(5000, 7, {.pool = &pool});
    expectBitIdentical(capped, full);
}

} // namespace
