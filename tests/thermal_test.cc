/**
 * @file
 * Unit tests for the thermal library: the heat-sink mass model must
 * reproduce the paper's three calculator points (Fig. 12) and
 * behave monotonically in between.
 */

#include <gtest/gtest.h>

#include "support/errors.hh"
#include "thermal/heatsink.hh"

namespace {

using namespace uavf1;
using namespace uavf1::units;
using thermal::HeatsinkModel;

TEST(Heatsink, ReproducesPaperCalibrationPoints)
{
    const HeatsinkModel model;
    // Paper Section VI-A / Fig. 12: 162 g @ 30 W, 81 g @ 15 W,
    // ~10 g @ 1.5 W.
    EXPECT_NEAR(model.mass(Watts(30.0)).value(), 162.0, 0.5);
    EXPECT_NEAR(model.mass(Watts(15.0)).value(), 81.0, 0.5);
    EXPECT_NEAR(model.mass(Watts(1.5)).value(), 10.0, 0.5);
}

TEST(Heatsink, PaperHeadlineRatios)
{
    const HeatsinkModel model;
    // "~20x in TDP -> ~16.2x in heatsink weight" (Fig. 12).
    const double ratio = model.mass(Watts(30.0)).value() /
                         model.mass(Watts(1.5)).value();
    EXPECT_NEAR(ratio, 16.2, 0.5);
    // Halving 30 W halves the heat sink (162 -> 81).
    EXPECT_NEAR(model.mass(Watts(30.0)).value() /
                    model.mass(Watts(15.0)).value(),
                2.0, 0.05);
}

TEST(Heatsink, NoHeatsinkBelowThreshold)
{
    const HeatsinkModel model;
    EXPECT_DOUBLE_EQ(model.mass(Watts(0.9)).value(), 0.0);
    EXPECT_DOUBLE_EQ(model.mass(Watts(0.064)).value(), 0.0);
    EXPECT_DOUBLE_EQ(model.mass(Watts(0.002)).value(), 0.0);
    EXPECT_DOUBLE_EQ(model.mass(Watts(0.0)).value(), 0.0);
    EXPECT_GT(model.mass(Watts(1.0)).value(), 0.0);
}

class HeatsinkMonotoneTest : public ::testing::TestWithParam<double>
{
};

TEST_P(HeatsinkMonotoneTest, MassIncreasesWithTdp)
{
    const HeatsinkModel model;
    const double tdp = GetParam();
    const double here = model.mass(Watts(tdp)).value();
    const double above = model.mass(Watts(tdp * 1.25)).value();
    EXPECT_GT(above, here);
}

INSTANTIATE_TEST_SUITE_P(TdpSweep, HeatsinkMonotoneTest,
                         ::testing::Values(1.0, 2.0, 5.0, 7.5, 10.0,
                                           15.0, 20.0, 30.0, 60.0));

TEST(Heatsink, CustomParams)
{
    HeatsinkModel::Params params;
    params.massCoefficient = 5.0;
    params.exponent = 1.0;
    params.baseMass = 0.0;
    params.noHeatsinkBelow = Watts(0.0);
    const HeatsinkModel model(params);
    EXPECT_DOUBLE_EQ(model.mass(Watts(10.0)).value(), 50.0);
}

TEST(Heatsink, RejectsInvalidParams)
{
    HeatsinkModel::Params params;
    params.massCoefficient = 0.0;
    EXPECT_THROW(HeatsinkModel{params}, ModelError);
    params = {};
    params.exponent = -1.0;
    EXPECT_THROW(HeatsinkModel{params}, ModelError);
    const HeatsinkModel model;
    EXPECT_THROW(model.mass(Watts(-1.0)), ModelError);
}

TEST(Heatsink, ThermalResistanceBudget)
{
    // 60 K rise at 30 W -> 2 K/W.
    EXPECT_DOUBLE_EQ(
        HeatsinkModel::requiredThermalResistance(Watts(30.0), 25.0,
                                                 85.0),
        2.0);
    EXPECT_THROW(HeatsinkModel::requiredThermalResistance(
                     Watts(30.0), 85.0, 85.0),
                 ModelError);
    EXPECT_THROW(HeatsinkModel::requiredThermalResistance(
                     Watts(0.0), 25.0, 85.0),
                 ModelError);
}

} // namespace
