/**
 * @file
 * Unit tests for the mission model: power/time/energy accounting
 * and the paper's claim that higher safe velocity lowers mission
 * time and energy.
 */

#include <gtest/gtest.h>

#include "mission/mission_model.hh"
#include "support/errors.hh"

namespace {

using namespace uavf1;
using namespace uavf1::units;
using namespace uavf1::units::literals;
using namespace uavf1::mission;

PowerProfile
hoverDominatedProfile()
{
    PowerProfile profile;
    profile.hoverPower = 150.0_w;
    profile.staticPower = 10.0_w;
    profile.drag = physics::DragModel(1.1, 0.022);
    return profile;
}

TEST(Mission, TimeIsDistanceOverVelocity)
{
    const MissionModel mission(1000.0_m, hoverDominatedProfile());
    EXPECT_DOUBLE_EQ(mission.time(5.0_mps).value(), 200.0);
    EXPECT_DOUBLE_EQ(mission.time(10.0_mps).value(), 100.0);
}

TEST(Mission, PowerGrowsWithVelocityViaDrag)
{
    const MissionModel mission(1000.0_m, hoverDominatedProfile());
    const double p2 = mission.power(2.0_mps).value();
    const double p10 = mission.power(10.0_mps).value();
    EXPECT_GT(p10, p2);
    // At rest, only hover + static power remain.
    EXPECT_DOUBLE_EQ(mission.power(MetersPerSecond(0.0)).value(),
                     160.0);
}

TEST(Mission, HigherVelocityLowersEnergyInHoverDominatedRegime)
{
    // The paper's motivation: for small UAVs, mission energy is
    // dominated by hover power x mission time, so flying faster
    // (up to the safe velocity) saves energy.
    const MissionModel mission(1000.0_m, hoverDominatedProfile());
    const double e1 = mission.energy(1.0_mps).value();
    const double e2 = mission.energy(2.0_mps).value();
    const double e5 = mission.energy(5.0_mps).value();
    EXPECT_GT(e1, e2);
    EXPECT_GT(e2, e5);
}

TEST(Mission, EnergyOptimalVelocityIsInterior)
{
    // With strong drag the energy curve turns back up; the optimum
    // must be interior and better than both extremes.
    PowerProfile draggy;
    draggy.hoverPower = 50.0_w;
    draggy.staticPower = 5.0_w;
    draggy.drag = physics::DragModel(1.5, 0.3);
    const MissionModel mission(1000.0_m, draggy);

    const auto v_opt = mission.energyOptimalVelocity(30.0_mps);
    EXPECT_GT(v_opt.value(), 0.1);
    EXPECT_LT(v_opt.value(), 30.0);
    const double e_opt = mission.energy(v_opt).value();
    EXPECT_LT(e_opt, mission.energy(1.0_mps).value());
    EXPECT_LT(e_opt, mission.energy(30.0_mps).value());
}

TEST(Mission, EvaluateBundlesAllQuantities)
{
    const MissionModel mission(500.0_m, hoverDominatedProfile());
    const MissionPoint point = mission.evaluate(4.0_mps);
    EXPECT_DOUBLE_EQ(point.velocity, 4.0);
    EXPECT_DOUBLE_EQ(point.time, 125.0);
    EXPECT_NEAR(point.energy, point.power * point.time, 1e-9);
}

TEST(Mission, BatteryFeasibility)
{
    const MissionModel mission(1000.0_m, hoverDominatedProfile());
    const physics::Battery big("big", 5000.0_mah, 11.1_v, 380.0_g);
    const physics::Battery tiny("tiny", 240.0_mah, 3.7_v, 7.0_g);
    EXPECT_TRUE(mission.feasible(5.0_mps, big));
    EXPECT_FALSE(mission.feasible(5.0_mps, tiny));
}

TEST(Mission, RejectsBadArguments)
{
    EXPECT_THROW(MissionModel(Meters(0.0), hoverDominatedProfile()),
                 ModelError);
    const MissionModel mission(100.0_m, hoverDominatedProfile());
    EXPECT_THROW(mission.time(MetersPerSecond(0.0)), ModelError);
    EXPECT_THROW(mission.power(MetersPerSecond(-1.0)), ModelError);
    EXPECT_THROW(
        mission.energyOptimalVelocity(MetersPerSecond(0.0)),
        ModelError);
}

} // namespace
