/**
 * @file
 * Tests for the scenario-runner subsystem: the study registry, the
 * spec grammar, artifact emission and the batch determinism
 * contract (bit-identical outcomes and artifact bytes at any
 * thread count).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "exec/thread_pool.hh"
#include "plot/json_writer.hh"
#include "scenario/runner.hh"
#include "scenario/spec.hh"
#include "scenario/study.hh"
#include "support/errors.hh"

namespace {

using namespace uavf1;
using namespace uavf1::scenario;

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

TEST(Registry, EnumeratesEveryFigAndTableStudy)
{
    const StudyRegistry &registry = StudyRegistry::global();
    for (const char *name :
         {"fig02", "fig04", "fig05", "fig07", "fig09", "fig11",
          "fig12", "fig13", "fig14", "fig15", "fig16", "table1",
          "table2", "table3", "sweep", "roofline", "dvfs",
          "faults"}) {
        EXPECT_TRUE(registry.contains(name)) << name;
        const StudyInfo &info = registry.find(name);
        EXPECT_FALSE(info.title.empty()) << name;
        EXPECT_FALSE(info.description.empty()) << name;
        EXPECT_FALSE(info.artifacts.empty()) << name;
        EXPECT_TRUE(static_cast<bool>(info.run)) << name;
    }
    EXPECT_GE(registry.all().size(), 15u);
}

TEST(Registry, LookupIsCaseInsensitiveAndRejectsUnknown)
{
    const StudyRegistry &registry = StudyRegistry::global();
    EXPECT_EQ(registry.find(" FIG09 ").name, "fig09");
    EXPECT_THROW(registry.find("fig99"), ModelError);
}

TEST(Registry, UnknownStudySuggestsTheClosestNames)
{
    const StudyRegistry &registry = StudyRegistry::global();
    // A one-character typo earns a "did you mean" with the fix.
    try {
        registry.find("fig9");
        FAIL() << "expected ModelError";
    } catch (const ModelError &e) {
        const std::string message = e.what();
        EXPECT_NE(message.find("did you mean"), std::string::npos)
            << message;
        EXPECT_NE(message.find("fig09"), std::string::npos)
            << message;
    }
    try {
        registry.find("rofline");
        FAIL() << "expected ModelError";
    } catch (const ModelError &e) {
        EXPECT_NE(std::string(e.what()).find("roofline"),
                  std::string::npos)
            << e.what();
    }
    // Hopeless queries still list the registered studies.
    try {
        registry.find("quaternion-study");
        FAIL() << "expected ModelError";
    } catch (const ModelError &e) {
        const std::string message = e.what();
        EXPECT_EQ(message.find("did you mean"), std::string::npos)
            << message;
        EXPECT_NE(message.find("studies:"), std::string::npos)
            << message;
    }
}

TEST(Registry, RejectsDuplicateAndMalformedRegistrations)
{
    StudyRegistry registry;
    StudyInfo info;
    info.name = "demo";
    info.run = [](const StudyContext &) { return StudyResult(); };
    registry.add(info);
    EXPECT_THROW(registry.add(info), ModelError);

    StudyInfo no_run;
    no_run.name = "norun";
    EXPECT_THROW(registry.add(no_run), ModelError);
    StudyInfo no_name;
    no_name.run = info.run;
    EXPECT_THROW(registry.add(no_name), ModelError);
}

TEST(Params, NumbersCountsAndErrors)
{
    StudyParams params;
    params.set(" Sweep_Samples ", " 64 ");
    EXPECT_TRUE(params.has("sweep_samples"));
    EXPECT_EQ(params.getCount("sweep_samples", 10), 64u);
    EXPECT_EQ(params.getCount("absent", 10), 10u);
    EXPECT_DOUBLE_EQ(params.getNumber("sweep_samples", 0.0), 64.0);

    params.set("bad", "many");
    EXPECT_THROW(params.getNumber("bad", 0.0), ModelError);
    params.set("frac", "2.5");
    EXPECT_THROW(params.getCount("frac", 1), ModelError);
    params.set("neg", "-3");
    EXPECT_THROW(params.getCount("neg", 1), ModelError);

    // set() overwrites in place rather than duplicating.
    params.set("sweep_samples", "32");
    EXPECT_EQ(params.getCount("sweep_samples", 10), 32u);
    EXPECT_EQ(params.entries().front().second, "32");
}

TEST(Spec, ParsesTheLoadConfigGrammar)
{
    const ScenarioSpec spec = ScenarioSpec::parse(
        "# a comment\n"
        "study = FIG09\n"
        "\n"
        "label = heavy payload\n"
        "  Sweep_Samples =  21  \n");
    EXPECT_EQ(spec.study, "fig09");
    EXPECT_EQ(spec.displayLabel(), "heavy payload");
    EXPECT_EQ(spec.overrides.getCount("sweep_samples", 0), 21u);
}

TEST(Spec, RejectsMalformedAndStudylessText)
{
    EXPECT_THROW(ScenarioSpec::parse("study = fig09\nnot a pair"),
                 ModelError);
    EXPECT_THROW(ScenarioSpec::parse("sweep_samples = 8"),
                 ModelError);
    ScenarioSpec spec;
    EXPECT_THROW(spec.set("no-equals-sign"), ModelError);
}

TEST(Runner, RunsAStudyWithOverrides)
{
    ScenarioSpec spec;
    spec.study = "fig09";
    spec.overrides.set("sweep_samples", "21");
    const ScenarioOutcome outcome = ScenarioRunner().run(spec);
    ASSERT_TRUE(outcome.ok) << outcome.error;
    ASSERT_FALSE(outcome.result.series.empty());
    EXPECT_EQ(outcome.result.series.front().size(), 21u);
    EXPECT_FALSE(outcome.result.metrics.empty());
    EXPECT_TRUE(outcome.artifacts.empty()); // No outDir configured.
}

TEST(Runner, CapturesStudyFailuresPerScenario)
{
    ScenarioSpec bad_param;
    bad_param.study = "fig02";
    bad_param.overrides.set("bogus", "1");
    ScenarioOutcome outcome = ScenarioRunner().run(bad_param);
    EXPECT_FALSE(outcome.ok);
    EXPECT_NE(outcome.error.find("bogus"), std::string::npos);

    ScenarioSpec unknown;
    unknown.study = "fig99";
    outcome = ScenarioRunner().run(unknown);
    EXPECT_FALSE(outcome.ok);
    EXPECT_NE(outcome.error.find("fig99"), std::string::npos);

    // A batch with one failing scenario still runs the others.
    ScenarioSpec good;
    good.study = "fig12";
    const auto outcomes =
        ScenarioRunner().runAll({bad_param, good});
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_FALSE(outcomes[0].ok);
    EXPECT_TRUE(outcomes[1].ok) << outcomes[1].error;
}

TEST(Runner, SweepStudyMarksInfeasiblePointsInsteadOfAborting)
{
    // drone_weight = 0 fails the knob's own validation; the sweep
    // point (and the scenario) must survive it.
    ScenarioSpec spec;
    spec.study = "sweep";
    spec.overrides.set("knob", "drone_weight");
    spec.overrides.set("from", "0");
    spec.overrides.set("to", "1200");
    spec.overrides.set("steps", "4");
    const ScenarioOutcome outcome = ScenarioRunner().run(spec);
    ASSERT_TRUE(outcome.ok) << outcome.error;
    double infeasible = 0.0;
    for (const auto &metric : outcome.result.metrics) {
        if (metric.name == "infeasible_points")
            infeasible = metric.value;
    }
    EXPECT_GE(infeasible, 1.0);
}

TEST(Runner, RooflineStudyRendersTheCeilingFamily)
{
    namespace fs = std::filesystem;
    const std::string dir1 = "artifacts/scenario_test/roofline1";
    const std::string dir8 = "artifacts/scenario_test/roofline8";
    fs::remove_all(dir1);
    fs::remove_all(dir8);

    ScenarioSpec spec;
    spec.study = "roofline";
    spec.overrides.set("platform", "Nvidia TX2");
    spec.overrides.set("op", "half-clock");
    spec.overrides.set("samples", "33");

    const ScenarioRunner runner;
    RunnerOptions options;
    options.outDir = dir1;
    const ScenarioOutcome outcome = runner.run(spec, options);
    ASSERT_TRUE(outcome.ok) << outcome.error;

    // >= 2 compute + >= 2 memory ceiling lines, the attainable
    // envelope, and the algorithm markers.
    std::size_t compute_lines = 0;
    std::size_t memory_lines = 0;
    bool envelope = false;
    for (const auto &series : outcome.result.series) {
        if (series.name().rfind("compute: ", 0) == 0)
            ++compute_lines;
        if (series.name().rfind("memory: ", 0) == 0)
            ++memory_lines;
        if (series.name() == "attainable")
            envelope = true;
    }
    EXPECT_GE(compute_lines, 2u);
    EXPECT_GE(memory_lines, 2u);
    EXPECT_TRUE(envelope);
    ASSERT_EQ(outcome.artifacts.size(), 3u); // json + csv + svg.

    // Acceptance: artifact bytes are bit-identical at 1 vs 8
    // threads through the batch path.
    exec::ThreadPool pool1(1);
    exec::ThreadPool pool8(8);
    RunnerOptions serial;
    serial.outDir = dir8 + "/serial";
    serial.parallel.pool = &pool1;
    RunnerOptions parallel;
    parallel.outDir = dir8 + "/parallel";
    parallel.parallel.pool = &pool8;
    const std::vector<ScenarioSpec> batch = {spec, spec, spec, spec};
    const auto a = runner.runAll(batch, serial);
    const auto b = runner.runAll(batch, parallel);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_TRUE(a[i].ok && b[i].ok);
        ASSERT_EQ(a[i].artifacts.size(), b[i].artifacts.size());
        for (std::size_t f = 0; f < a[i].artifacts.size(); ++f) {
            EXPECT_EQ(slurp(a[i].artifacts[f]),
                      slurp(b[i].artifacts[f]))
                << a[i].artifacts[f];
        }
    }

    // Unknown presets and operating points fail per-scenario with
    // an actionable message — with the same prefix/edit-distance
    // "did you mean" treatment study names get, and the preset
    // list — never out of the batch. skyline_cli reports the
    // failed outcome and exits non-zero.
    ScenarioSpec bad = spec;
    bad.overrides.set("platform", "Nvidia TX3");
    const ScenarioOutcome failed = runner.run(bad);
    EXPECT_FALSE(failed.ok);
    EXPECT_NE(failed.error.find("Nvidia TX3"), std::string::npos);
    EXPECT_NE(failed.error.find("did you mean"), std::string::npos)
        << failed.error;
    EXPECT_NE(failed.error.find("Nvidia TX2"), std::string::npos)
        << failed.error;
}

TEST(Runner, RooflineStudyRendersPerWorkloadEnvelopes)
{
    ScenarioSpec spec;
    spec.study = "roofline";
    spec.overrides.set("samples", "17");
    spec.overrides.set("workloads", "annotated");

    const ScenarioRunner runner;
    const ScenarioOutcome outcome = runner.run(spec);
    ASSERT_TRUE(outcome.ok) << outcome.error;

    // Annotated workloads get their own attainable envelopes, and
    // the binding diversity shows up in the metrics: the
    // scalar-only kernel binds compute ceiling 0 (not the GPU) and
    // the cache-resident kernel binds a memory ceiling.
    std::size_t envelopes = 0;
    for (const auto &series : outcome.result.series) {
        if (series.name().rfind("envelope: ", 0) == 0)
            ++envelopes;
    }
    EXPECT_GE(envelopes, 2u);

    const auto metric = [&](const std::string &name) {
        for (const auto &m : outcome.result.metrics) {
            if (m.name == name)
                return m.value;
        }
        ADD_FAILURE() << "missing metric " << name;
        return -1.0;
    };
    EXPECT_EQ(metric("DroNet_binding_kind"), 0.0);
    EXPECT_EQ(metric("DroNet_binding_index"), 2.0);
    EXPECT_EQ(metric("DroNet (scalar-only)_binding_kind"), 0.0);
    EXPECT_EQ(metric("DroNet (scalar-only)_binding_index"), 0.0);
    EXPECT_EQ(
        metric("VIO frontend (cache-resident)_binding_kind"), 1.0);
    EXPECT_EQ(
        metric("VIO frontend (cache-resident)_binding_index"), 1.0);

    // The default workloads value stays the standard registry (no
    // envelopes), and junk values fail loudly.
    ScenarioSpec standard = spec;
    standard.overrides.set("workloads", "standard");
    const ScenarioOutcome plain = runner.run(standard);
    ASSERT_TRUE(plain.ok) << plain.error;
    for (const auto &series : plain.result.series)
        EXPECT_EQ(series.name().rfind("envelope: ", 0),
                  std::string::npos);
    ScenarioSpec junk = spec;
    junk.overrides.set("workloads", "bogus");
    EXPECT_FALSE(runner.run(junk).ok);
}

TEST(Runner, DvfsStudySweepsOperatingPointsWithAttribution)
{
    ScenarioSpec spec;
    spec.study = "dvfs";
    spec.overrides.set("platform", "Nvidia TX2");

    const ScenarioRunner runner;
    const ScenarioOutcome outcome = runner.run(spec);
    ASSERT_TRUE(outcome.ok) << outcome.error;

    const auto metric = [&](const std::string &name) {
        for (const auto &m : outcome.result.metrics) {
            if (m.name == name)
                return m.value;
        }
        ADD_FAILURE() << "missing metric " << name;
        return -1.0;
    };
    EXPECT_EQ(metric("operating_points"), 3.0);
    // The CMOS law: each slower point costs less TDP...
    EXPECT_GT(metric("nominal_tdp"), metric("half-clock_tdp"));
    EXPECT_GT(metric("half-clock_tdp"), metric("dvfs-floor_tdp"));
    // ...and (the paper's remedy) the lighter heat sink *raises*
    // v_safe while the design stays over-provisioned.
    EXPECT_GT(metric("dvfs-floor_v_safe"), metric("nominal_v_safe"));
    // The nominal point rides DroNet's measured throughput
    // (measured-first: no binding attribution), while every scaled
    // point falls back to the modeled bound, where the GPU roof
    // (compute ceiling index 2) binds.
    EXPECT_EQ(metric("nominal_binding_kind"), 0.0);
    EXPECT_EQ(metric("nominal_binding_index"), 0.0);
    EXPECT_EQ(metric("half-clock_binding_index"), 2.0);
    EXPECT_EQ(metric("dvfs-floor_binding_index"), 2.0);

    // v_safe-vs-TDP and roof series, one point per operating point.
    ASSERT_EQ(outcome.result.series.size(), 2u);
    EXPECT_EQ(outcome.result.series[0].size(), 3u);

    // The binding ceiling is named in the summary table.
    EXPECT_NE(outcome.result.summary.find("Pascal GPU FP16"),
              std::string::npos);
}

TEST(Runner, DvfsStudyOverlaysPlatformAlgorithmGrids)
{
    ScenarioSpec spec;
    spec.study = "dvfs";
    spec.overrides.set("platforms", "Nvidia TX2, Nvidia AGX");
    spec.overrides.set("algorithms", "DroNet, TrailNet");

    const ScenarioRunner runner;
    const ScenarioOutcome outcome = runner.run(spec);
    ASSERT_TRUE(outcome.ok) << outcome.error;

    const auto metric = [&](const std::string &name) {
        for (const auto &m : outcome.result.metrics) {
            if (m.name == name)
                return m.value;
        }
        ADD_FAILURE() << "missing metric " << name;
        return -1.0;
    };
    // 2 platforms x 2 algorithms, two series (v_safe + roof) each.
    EXPECT_EQ(metric("combinations"), 4.0);
    EXPECT_EQ(outcome.result.series.size(), 8u);
    bool overlay_series = false;
    for (const auto &series : outcome.result.series) {
        overlay_series =
            overlay_series ||
            series.name().find("(Nvidia AGX / TrailNet)") !=
                std::string::npos;
    }
    EXPECT_TRUE(overlay_series);
    // Per-combination metrics carry the sanitized prefix, and the
    // summary renders the overlay table.
    EXPECT_GT(metric("nvidia_agx_trailnet_nominal_v_safe"), 0.0);
    EXPECT_NE(outcome.result.summary.find("DVFS overlay"),
              std::string::npos);

    // A typo'd platform in the list fails with suggestions.
    ScenarioSpec bad = spec;
    bad.overrides.set("platforms", "Nvidia TX2, Nvidia AXG");
    const ScenarioOutcome failed = runner.run(bad);
    EXPECT_FALSE(failed.ok);
    EXPECT_NE(failed.error.find("did you mean"), std::string::npos)
        << failed.error;
}

TEST(Runner, RooflineStudyRendersTheStageBreakdown)
{
    ScenarioSpec spec;
    spec.study = "roofline";
    spec.overrides.set("samples", "9");
    spec.overrides.set("platform", "TX2-CPU + Navion");
    spec.overrides.set("pipeline", "SPA package delivery");

    const ScenarioRunner runner;
    const ScenarioOutcome outcome = runner.run(spec);
    ASSERT_TRUE(outcome.ok) << outcome.error;

    const auto metric = [&](const std::string &name) {
        for (const auto &m : outcome.result.metrics) {
            if (m.name == name)
                return m.value;
        }
        ADD_FAILURE() << "missing metric " << name;
        return -1.0;
    };
    EXPECT_EQ(metric("pipeline_stages"), 4.0);
    // The stage-gated Navion ceiling shortens exactly the SLAM
    // stage: its roofline bound is attributed to compute ceiling 2
    // while the other stages ride their modeled host-CPU bounds
    // (the planner: 16.79 GOP on the 42 GOPS scalar roof),
    // reproducing the paper's 1.23 Hz accelerated pipeline.
    EXPECT_NEAR(metric("stage_slam_latency"), 5.814, 0.01);
    EXPECT_EQ(metric("stage_slam_binding_kind"), 0.0);
    EXPECT_EQ(metric("stage_slam_binding_index"), 2.0);
    EXPECT_NEAR(metric("stage_path_planner_latency"),
                1000.0 * 16.79 / 42.0, 1e-9);
    EXPECT_NEAR(metric("pipeline_throughput"), 1.23, 0.01);
    EXPECT_NE(outcome.result.summary.find("Navion VIO ASIC"),
              std::string::npos);

    // Unknown pipeline and stage names fail with suggestions.
    ScenarioSpec bad_pipeline = spec;
    bad_pipeline.overrides.set("pipeline", "SPA package delivry");
    const ScenarioOutcome no_pipeline = runner.run(bad_pipeline);
    EXPECT_FALSE(no_pipeline.ok);
    EXPECT_NE(no_pipeline.error.find("did you mean"),
              std::string::npos)
        << no_pipeline.error;

    ScenarioSpec bad_stage = spec;
    bad_stage.overrides.set("stage", "SLMA");
    const ScenarioOutcome no_stage = runner.run(bad_stage);
    EXPECT_FALSE(no_stage.ok);
    EXPECT_NE(no_stage.error.find("did you mean"),
              std::string::npos)
        << no_stage.error;
    EXPECT_NE(no_stage.error.find("SLAM"), std::string::npos)
        << no_stage.error;

    // stage= narrows the breakdown to the named stage.
    ScenarioSpec slam_only = spec;
    slam_only.overrides.set("stage", "SLAM");
    const ScenarioOutcome narrowed = runner.run(slam_only);
    ASSERT_TRUE(narrowed.ok) << narrowed.error;
    bool planner_metric = false;
    for (const auto &m : narrowed.result.metrics) {
        planner_metric = planner_metric ||
                         m.name == "stage_path_planner_latency";
    }
    EXPECT_FALSE(planner_metric);
}

TEST(Runner, FaultsStudyReportsPerStageBindingShifts)
{
    ScenarioSpec spec;
    spec.study = "faults";
    spec.overrides.set("fault", "stage-failure");
    spec.overrides.set("samples", "256");
    spec.overrides.set("levels", "2");

    const ScenarioRunner runner;
    const ScenarioOutcome outcome = runner.run(spec);
    ASSERT_TRUE(outcome.ok) << outcome.error;

    const auto metric = [&](const std::string &name) {
        for (const auto &m : outcome.result.metrics) {
            if (m.name == name)
                return m.value;
        }
        ADD_FAILURE() << "missing metric " << name;
        return -1.0;
    };
    // The stage-failure suite has no platform faults, so on the
    // measured TX2 every surviving stage stays
    // measurement-sourced — the per-stage binding metrics make
    // that visible in the artifact.
    EXPECT_EQ(metric("stage_slam_measured"), 1.0);
    EXPECT_EQ(metric("stage_slam_compute_bound"), 0.0);
    EXPECT_EQ(metric("stage_path_planner_measured"), 1.0);
    EXPECT_EQ(metric("stage_octomap_measured"), 1.0);
    EXPECT_EQ(metric("stage_command_tracking_measured"), 1.0);
}

TEST(Runner, FaultsStudyReportsTheDegradedEnvelope)
{
    ScenarioSpec spec;
    spec.study = "faults";
    spec.overrides.set("fault", "mixed");
    spec.overrides.set("samples", "256");
    spec.overrides.set("levels", "3");

    const ScenarioRunner runner;
    const ScenarioOutcome outcome = runner.run(spec);
    ASSERT_TRUE(outcome.ok) << outcome.error;
    EXPECT_EQ(outcome.status, ScenarioStatus::Ok);

    const auto metric = [&](const std::string &name) {
        for (const auto &m : outcome.result.metrics) {
            if (m.name == name)
                return m.value;
        }
        ADD_FAILURE() << "missing metric " << name;
        return -1.0;
    };
    EXPECT_GT(metric("baseline_v_safe"), 0.0);
    EXPECT_LE(metric("degraded_v_safe_mean"),
              metric("baseline_v_safe") + 1e-12);
    const double abort_probability = metric("abort_probability");
    EXPECT_GE(abort_probability, 0.0);
    EXPECT_LE(abort_probability, 1.0);
    // One degradation-curve point per level in every series.
    ASSERT_FALSE(outcome.result.series.empty());
    EXPECT_EQ(outcome.result.series.front().size(), 3u);

    // Unknown suites fail the scenario with the suite list.
    ScenarioSpec bad = spec;
    bad.overrides.set("fault", "meteor-strike");
    const ScenarioOutcome failed = runner.run(bad);
    EXPECT_FALSE(failed.ok);
    EXPECT_NE(failed.error.find("meteor-strike"),
              std::string::npos);
}

TEST(Runner, StageScopedSuitesRoundTripThroughTheTextForm)
{
    // The new stage-scoped suites, written exactly as a scenario
    // file would spell them, parse and run end to end on the
    // accelerated Navion family.
    const ScenarioSpec spec = ScenarioSpec::parse(
        "# ECC fallback drill on the accelerated family\n"
        "study = faults\n"
        "label = ecc drill\n"
        "fault = ecc-fallback\n"
        "platform = TX2-CPU + Navion\n"
        "samples = 512\n"
        "levels = 2\n");
    EXPECT_EQ(spec.study, "faults");
    EXPECT_EQ(spec.displayLabel(), "ecc drill");
    EXPECT_EQ(spec.overrides.get("fault", ""), "ecc-fallback");

    const ScenarioRunner runner;
    const ScenarioOutcome outcome = runner.run(spec);
    ASSERT_TRUE(outcome.ok) << outcome.error;

    const auto metric = [&](const std::string &name) {
        for (const auto &m : outcome.result.metrics) {
            if (m.name == name)
                return m.value;
        }
        ADD_FAILURE() << "missing metric " << name;
        return -1.0;
    };
    // Stage-scoped derates never strand SLAM: whether the Navion
    // runs at full peak, half peak, or drops out entirely, the
    // stage lands on *a* compute roof (worst case the NEON one).
    EXPECT_EQ(metric("stage_slam_compute_bound"), 1.0);
    EXPECT_EQ(metric("abort_probability"), 0.0);
    EXPECT_GT(
        metric("activation_slam_accelerator_ecc_half_peak"), 0.0);
    EXPECT_LE(metric("degraded_v_safe_mean"),
              metric("baseline_v_safe") + 1e-12);
    EXPECT_NE(outcome.result.summary.find("ecc-fallback"),
              std::string::npos);

    // Same grammar, the traffic-inflation suite: contention flips
    // the mapping stage memory-bound in the activated missions.
    const ScenarioSpec spill = ScenarioSpec::parse(
        "study = faults\n"
        "fault = cache-contention\n"
        "platform = TX2-CPU + Navion\n"
        "samples = 512\n"
        "levels = 2\n");
    const ScenarioOutcome spilled = runner.run(spill);
    ASSERT_TRUE(spilled.ok) << spilled.error;
    double octomap_memory_bound = -1.0;
    for (const auto &m : spilled.result.metrics) {
        if (m.name == "stage_octomap_memory_bound")
            octomap_memory_bound = m.value;
    }
    EXPECT_GT(octomap_memory_bound, 0.0);
    EXPECT_LT(octomap_memory_bound, 1.0);
}

TEST(Runner, FaultsStudyRejectsOutOfRangeParams)
{
    // Out-of-range severities and typo'd redundancy schemes are
    // rejected by name, never silently clamped.
    ScenarioSpec spec;
    spec.study = "faults";
    spec.overrides.set("fault", "ecc-fallback");
    spec.overrides.set("samples", "64");
    spec.overrides.set("levels", "2");

    const ScenarioRunner runner;
    // (Non-numeric/NaN text is already rejected one layer down by
    // StudyParams::getNumber, which names the parameter itself.)
    for (const char *scale : {"1.5", "-0.5"}) {
        ScenarioSpec bad = spec;
        bad.overrides.set("fault_scale", scale);
        const ScenarioOutcome failed = runner.run(bad);
        EXPECT_FALSE(failed.ok) << scale;
        EXPECT_NE(failed.error.find("fault_scale"),
                  std::string::npos)
            << failed.error;
        EXPECT_NE(failed.error.find("[0, 1]"), std::string::npos)
            << failed.error;
    }

    ScenarioSpec typo = spec;
    typo.overrides.set("redundancy", "dul");
    const ScenarioOutcome failed = runner.run(typo);
    EXPECT_FALSE(failed.ok);
    EXPECT_NE(failed.error.find("did you mean"), std::string::npos)
        << failed.error;
    EXPECT_NE(failed.error.find("dual"), std::string::npos)
        << failed.error;
}

TEST(Runner, DeadlineTimesOutAnOverrunningScenario)
{
    ScenarioSpec spec;
    spec.study = "faults";
    // Big enough that the campaign cannot finish inside the
    // deadline; the cooperative checkpoint fires at the first
    // sample-block boundary past it.
    spec.overrides.set("samples", "2000000");
    spec.overrides.set("levels", "9");

    RunnerOptions options;
    options.deadlineMs = 1;
    const ScenarioOutcome outcome =
        ScenarioRunner().run(spec, options);
    EXPECT_FALSE(outcome.ok);
    EXPECT_EQ(outcome.status, ScenarioStatus::Timeout);
    EXPECT_TRUE(outcome.artifacts.empty());

    const std::string summary =
        ScenarioRunner::renderSummary({outcome});
    EXPECT_NE(summary.find("FAILED (timeout)"), std::string::npos)
        << summary;
}

TEST(Runner, FailFastCancelsTheRestOfTheBatch)
{
    ScenarioSpec bad;
    bad.study = "fig02";
    bad.overrides.set("bogus", "1");
    ScenarioSpec good;
    good.study = "fig12";

    // A serial pool makes the schedule deterministic: the failure
    // trips the shared flag before the second scenario starts.
    exec::ThreadPool pool1(1);
    RunnerOptions options;
    options.failFast = true;
    options.parallel.pool = &pool1;
    const auto outcomes =
        ScenarioRunner().runAll({bad, good}, options);
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_FALSE(outcomes[0].ok);
    EXPECT_EQ(outcomes[0].status, ScenarioStatus::Error);
    EXPECT_FALSE(outcomes[1].ok);
    EXPECT_EQ(outcomes[1].status, ScenarioStatus::Cancelled);

    // Without fail-fast the same batch still runs everything
    // (CapturesStudyFailuresPerScenario), and the summary names
    // the cancellation.
    const std::string summary =
        ScenarioRunner::renderSummary(outcomes);
    EXPECT_NE(summary.find("FAILED (cancelled)"),
              std::string::npos)
        << summary;
}

TEST(Runner, UniqueArtifactBasenamesForRepeatedStudies)
{
    namespace fs = std::filesystem;
    const std::string dir = "artifacts/scenario_test/repeat";
    fs::remove_all(dir);

    ScenarioSpec a;
    a.study = "fig12";
    ScenarioSpec b;
    b.study = "fig12";
    RunnerOptions options;
    options.outDir = dir;
    const auto outcomes = ScenarioRunner().runAll({a, b}, options);
    ASSERT_EQ(outcomes.size(), 2u);
    ASSERT_TRUE(outcomes[0].ok && outcomes[1].ok);
    EXPECT_TRUE(fs::exists(dir + "/fig12.json"));
    EXPECT_TRUE(fs::exists(dir + "/fig12_2.json"));
}

TEST(Runner, RunAllEmitsArtifactsForEveryStudy)
{
    namespace fs = std::filesystem;
    const std::string dir = "artifacts/scenario_test/all";
    fs::remove_all(dir);

    const ScenarioRunner runner;
    RunnerOptions options;
    options.outDir = dir;
    const auto outcomes =
        runner.runAll(runner.allSpecs(), options);
    ASSERT_EQ(outcomes.size(), runner.registry().all().size());
    for (const auto &outcome : outcomes) {
        EXPECT_TRUE(outcome.ok)
            << outcome.study << ": " << outcome.error;
        ASSERT_FALSE(outcome.artifacts.empty()) << outcome.study;
        // Every study at least produces the JSON metrics artifact.
        EXPECT_NE(outcome.artifacts.front().find(".json"),
                  std::string::npos);
        for (const auto &path : outcome.artifacts)
            EXPECT_TRUE(fs::exists(path)) << path;
    }
    const std::string summary =
        ScenarioRunner::renderSummary(outcomes);
    EXPECT_NE(summary.find("0 failed"), std::string::npos);
}

TEST(Runner, BatchIsBitIdenticalAtAnyThreadCount)
{
    namespace fs = std::filesystem;
    const std::string dir1 = "artifacts/scenario_test/t1";
    const std::string dir8 = "artifacts/scenario_test/t8";
    fs::remove_all(dir1);
    fs::remove_all(dir8);

    const ScenarioRunner runner;
    exec::ThreadPool pool1(1);
    exec::ThreadPool pool8(8);

    RunnerOptions serial;
    serial.outDir = dir1;
    serial.parallel.pool = &pool1;
    RunnerOptions parallel;
    parallel.outDir = dir8;
    parallel.parallel.pool = &pool8;

    const auto specs = runner.allSpecs();
    const auto a = runner.runAll(specs, serial);
    const auto b = runner.runAll(specs, parallel);

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].ok, b[i].ok) << a[i].study;
        EXPECT_EQ(a[i].result.summary, b[i].result.summary)
            << a[i].study;
        ASSERT_EQ(a[i].result.metrics.size(),
                  b[i].result.metrics.size());
        for (std::size_t m = 0; m < a[i].result.metrics.size();
             ++m) {
            EXPECT_EQ(a[i].result.metrics[m].value,
                      b[i].result.metrics[m].value)
                << a[i].study << " "
                << a[i].result.metrics[m].name;
        }
        // Artifact bytes, not just parsed values, must match.
        ASSERT_EQ(a[i].artifacts.size(), b[i].artifacts.size());
        for (std::size_t f = 0; f < a[i].artifacts.size(); ++f) {
            EXPECT_EQ(slurp(a[i].artifacts[f]),
                      slurp(b[i].artifacts[f]))
                << a[i].artifacts[f];
        }
    }
    EXPECT_EQ(ScenarioRunner::renderSummary(a),
              ScenarioRunner::renderSummary(b));
}

TEST(JsonWriter, EscapesAndFormats)
{
    EXPECT_EQ(plot::Json::str("a\"b\\c\nd"),
              "\"a\\\"b\\\\c\\nd\"");
    EXPECT_EQ(plot::Json::num(2.5), "2.5");
    EXPECT_EQ(plot::Json::num(
                  std::numeric_limits<double>::infinity()),
              "null");
    const std::string json = plot::JsonObject()
                                 .add("name", "knee")
                                 .add("value", 43.0)
                                 .add("flag", true)
                                 .render();
    EXPECT_EQ(json,
              "{\"name\": \"knee\", \"value\": 43, "
              "\"flag\": true}");
}

} // namespace
