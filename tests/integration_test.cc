/**
 * @file
 * Integration tests: every headline quantity the paper reports,
 * asserted end-to-end through the studies library. These are the
 * repository's reproduction contract; EXPERIMENTS.md documents the
 * same numbers.
 */

#include <gtest/gtest.h>

#include "studies/fig02_swap.hh"
#include "studies/fig05_safety.hh"
#include "studies/fig09_payload.hh"
#include "studies/fig11_compute.hh"
#include "studies/fig13_algorithms.hh"
#include "studies/fig14_redundancy.hh"
#include "studies/fig15_full_system.hh"
#include "studies/fig16_accelerators.hh"
#include "sim/table1.hh"
#include "sim/validation.hh"

namespace {

using namespace uavf1;
using namespace uavf1::studies;

TEST(Fig02, SwapTaxonomyMatchesPaper)
{
    const Fig02Result result = runFig02();
    ASSERT_EQ(result.rows.size(), 3u);
    EXPECT_EQ(result.rows[0].sizeClass, "nano");
    EXPECT_DOUBLE_EQ(result.rows[0].capacityMah, 240.0);
    EXPECT_DOUBLE_EQ(result.rows[0].enduranceMin, 6.0);
    EXPECT_DOUBLE_EQ(result.rows[1].capacityMah, 1300.0);
    EXPECT_DOUBLE_EQ(result.rows[2].capacityMah, 3830.0);
    EXPECT_DOUBLE_EQ(result.rows[2].enduranceMin, 30.0);
    // Implied power draw grows with size class.
    EXPECT_LT(result.rows[0].impliedDrawW, result.rows[1].impliedDrawW);
    EXPECT_LT(result.rows[1].impliedDrawW, result.rows[2].impliedDrawW);
}

TEST(Fig05, SafetyModelDerivation)
{
    const Fig05Result result = runFig05();
    // Paper: "as T_action -> 0, the velocity -> 32" (sqrt(1000)).
    EXPECT_NEAR(result.roof, 31.62, 0.01);
    // Point A at 1 Hz ~ 10 m/s; knee region at 100 Hz ~ 30 m/s.
    EXPECT_NEAR(result.velocityAtA, 9.16, 0.05);
    EXPECT_NEAR(result.velocityAt100Hz, 31.13, 0.05);
    // "100x improvement in action throughput translates to ~3x
    // velocity" (10 -> 30 m/s).
    EXPECT_NEAR(result.gainAToKnee, 3.4, 0.1);
    // Beyond the knee, another 100x gains almost nothing.
    EXPECT_LT(result.gainBeyondKnee, 1.02);
    // The sweep is monotone decreasing in T (increasing in f).
    for (std::size_t i = 1; i < result.sweep.size(); ++i) {
        EXPECT_GT(result.sweep[i].tAction,
                  result.sweep[i - 1].tAction);
        EXPECT_LE(result.sweep[i].vSafe,
                  result.sweep[i - 1].vSafe);
    }
}

TEST(Fig07, ValidationErrorsInPaperBand)
{
    // The paper reports 5.1% - 9.5% model-vs-flight error, with the
    // model optimistic. Our simulated flights must reproduce the
    // structure: positive error, single-digit to low-teens, for all
    // four builds.
    const auto cases = sim::table1ValidationCases();
    const auto results = sim::ValidationHarness::validateAll(cases);
    ASSERT_EQ(results.size(), 4u);
    for (const auto &result : results) {
        EXPECT_GT(result.observed, 0.0) << result.name;
        EXPECT_GT(result.errorPercent, 0.0)
            << result.name << ": model must be optimistic";
        EXPECT_LT(result.errorPercent, 20.0) << result.name;
    }
    // Velocity ordering matches the paper: A > C > D > B.
    EXPECT_GT(results[0].observed, results[2].observed);
    EXPECT_GT(results[2].observed, results[3].observed);
    EXPECT_GT(results[3].observed, results[1].observed);
}

TEST(Fig09, PayloadVelocityNonLinearity)
{
    const Fig09Result result = runFig09();
    ASSERT_EQ(result.markers.size(), 4u);
    // Monotone decreasing sweep.
    for (std::size_t i = 1; i < result.sweep.size(); ++i) {
        EXPECT_LT(result.sweep[i].vSafe,
                  result.sweep[i - 1].vSafe);
    }
    // The paper's qualitative claim: equal 50 g increments produce
    // unequal drops, and the 210 g heavier UpBoard build loses
    // disproportionately more.
    EXPECT_GT(result.dropAtoC, 0.0);
    EXPECT_GT(result.dropCtoD, 0.0);
    EXPECT_NE(std::round(result.dropAtoC * 10.0),
              std::round(result.dropCtoD * 10.0));
    EXPECT_GT(result.dropAtoB, result.dropAtoC + result.dropCtoD);
    // Velocities in the paper's low-single-digit regime.
    for (const auto &marker : result.markers) {
        EXPECT_GT(marker.vSafe, 0.5);
        EXPECT_LT(marker.vSafe, 5.0);
    }
}

TEST(Fig11, ComputeChoiceOnSpark)
{
    const Fig11Result result = runFig11();
    // Paper: DroNet at 150 Hz (NCS), 230 Hz (AGX).
    EXPECT_DOUBLE_EQ(result.ncs.throughputHz, 150.0);
    EXPECT_DOUBLE_EQ(result.agx30.throughputHz, 230.0);
    // NCS: 47 g, no heatsink. AGX-30W: 162 g heatsink.
    EXPECT_DOUBLE_EQ(result.ncs.heatsinkGrams, 0.0);
    EXPECT_NEAR(result.agx30.heatsinkGrams, 162.0, 0.5);
    EXPECT_NEAR(result.agx15.heatsinkGrams, 81.0, 0.5);
    // Headline: despite 1.5x more throughput, the AGX loses --
    // physics restricts it; NCS has the higher roofline.
    EXPECT_TRUE(result.ncsWins);
    EXPECT_GT(result.ncs.analysis.roofVelocity.value(),
              result.agx30.analysis.roofVelocity.value());
    // Both options are physics-bound (past their knees).
    EXPECT_EQ(result.ncs.analysis.bound,
              core::BoundType::PhysicsBound);
    EXPECT_EQ(result.agx30.analysis.bound,
              core::BoundType::PhysicsBound);
    // Headline: dropping AGX TDP 30 W -> 15 W raises the roofline
    // by ~75%.
    EXPECT_NEAR(result.agxTdpGain, 1.75, 0.02);
}

TEST(Fig12, HeatsinkSizingCoveredByThermalTests)
{
    // Fig. 12 is asserted in thermal_test.cc (162/81/10 g and the
    // 16.2x ratio); here we only pin the 30 W -> 15 W halving the
    // Fig. 11 study relies on.
    const Fig11Result result = runFig11();
    EXPECT_NEAR(result.agx30.heatsinkGrams /
                    result.agx15.heatsinkGrams,
                2.0, 0.02);
}

TEST(Fig13, AlgorithmCharacterizationOnPelican)
{
    const Fig13Result result = runFig13();
    // Paper: knee at 43 Hz.
    EXPECT_NEAR(result.kneeThroughput, 43.0, 0.2);
    ASSERT_EQ(result.entries.size(), 3u);

    const auto &spa = result.entries[0];
    const auto &trailnet = result.entries[1];
    const auto &dronet = result.entries[2];

    // SPA: 1.1 Hz, compute-bound, v ~ 2.3 m/s, needs 39x.
    EXPECT_DOUBLE_EQ(spa.throughputHz, 1.1);
    EXPECT_EQ(spa.analysis.bound, core::BoundType::ComputeBound);
    EXPECT_NEAR(spa.analysis.safeVelocity.value(), 2.3, 0.02);
    EXPECT_NEAR(spa.factorVsKnee, 39.0, 0.5);

    // TrailNet: 55 Hz, over-provisioned 1.27x.
    EXPECT_DOUBLE_EQ(trailnet.throughputHz, 55.0);
    EXPECT_EQ(trailnet.analysis.bound,
              core::BoundType::PhysicsBound);
    EXPECT_NEAR(trailnet.factorVsKnee, 1.27, 0.02);

    // DroNet: 178 Hz -> min(60 FPS sensor, 178) = 60 Hz pipeline;
    // the *compute* margin vs the knee is 178/43 = 4.13x.
    EXPECT_DOUBLE_EQ(dronet.throughputHz, 178.0);
    EXPECT_NEAR(dronet.throughputHz / result.kneeThroughput, 4.13,
                0.05);
    EXPECT_EQ(dronet.analysis.bound, core::BoundType::PhysicsBound);

    // E2E beats SPA on safe velocity (the section's takeaway).
    EXPECT_GT(trailnet.analysis.safeVelocity.value(),
              spa.analysis.safeVelocity.value());
}

TEST(Fig14, DualModularRedundancyCost)
{
    const Fig14Result result = runFig14();
    // Both configurations run DroNet at (near) 178 Hz and are
    // physics-bound.
    EXPECT_EQ(result.single.analysis.bound,
              core::BoundType::PhysicsBound);
    EXPECT_EQ(result.dual.analysis.bound,
              core::BoundType::PhysicsBound);
    EXPECT_EQ(result.single.replicas, 1);
    EXPECT_EQ(result.dual.replicas, 2);
    // DMR more than doubles the compute payload (second module +
    // heatsink + voter).
    EXPECT_GT(result.dual.computeGrams,
              2.0 * result.single.computeGrams);
    // Headline: ~33% safe-velocity loss.
    EXPECT_NEAR(result.velocityLossPercent, 33.0, 1.5);
}

TEST(Fig15, FullSystemCharacterization)
{
    const Fig15Result result = runFig15();
    // Knees: Pelican 43 Hz, Spark 30 Hz.
    EXPECT_NEAR(result.pelicanKnee, 43.0, 0.2);
    EXPECT_NEAR(result.sparkKnee, 30.0, 0.3);

    // Paper: Spark + TX2 + DroNet over-provisioned ~6x.
    const auto &spark_dronet =
        result.find("DJI Spark", "DroNet", "Nvidia TX2");
    EXPECT_EQ(spark_dronet.analysis.bound,
              core::BoundType::PhysicsBound);
    EXPECT_NEAR(spark_dronet.throughputHz / result.sparkKnee, 6.0,
                0.15);

    // Paper: on the Pelican, Ras-Pi4 needs 3.3x (DroNet), 110x
    // (TrailNet) and 660x (CAD2RL).
    const auto &pi_dronet =
        result.find("AscTec Pelican", "DroNet", "Ras-Pi4");
    EXPECT_EQ(pi_dronet.analysis.bound,
              core::BoundType::ComputeBound);
    EXPECT_NEAR(pi_dronet.factorVsKnee, 3.3, 0.05);

    const auto &pi_trailnet =
        result.find("AscTec Pelican", "TrailNet", "Ras-Pi4");
    EXPECT_NEAR(pi_trailnet.factorVsKnee, 110.0, 1.0);

    const auto &pi_cad2rl =
        result.find("AscTec Pelican", "CAD2RL", "Ras-Pi4");
    EXPECT_NEAR(pi_cad2rl.factorVsKnee, 660.0, 5.0);

    // VGG16 on TX2 (16 Hz) is compute-bound on both UAVs.
    EXPECT_EQ(result.find("AscTec Pelican", "VGG16", "Nvidia TX2")
                  .analysis.bound,
              core::BoundType::ComputeBound);
    EXPECT_EQ(result.find("DJI Spark", "VGG16", "Nvidia TX2")
                  .analysis.bound,
              core::BoundType::ComputeBound);

    // The full 2 x 4 x 3 sweep is present.
    EXPECT_EQ(result.entries.size(), 24u);
    EXPECT_THROW(result.find("DJI Spark", "DroNet", "Cray-1"),
                 ModelError);
}

TEST(Fig16, AcceleratorPitfalls)
{
    const Fig16Result result = runFig16();
    // Paper: nano-UAV knee at 26 Hz.
    EXPECT_NEAR(result.kneeThroughput, 26.0, 0.2);

    // PULP-DroNet: 6 Hz @ 64 mW -> compute-bound, needs 4.33x.
    EXPECT_DOUBLE_EQ(result.pulp.throughputHz, 6.0);
    EXPECT_EQ(result.pulp.analysis.bound,
              core::BoundType::ComputeBound);
    EXPECT_NEAR(result.pulp.requiredSpeedup, 4.33, 0.05);

    // Navion in SPA: 810 ms -> 1.23 Hz -> needs 21.1x.
    EXPECT_NEAR(result.navion.throughputHz, 1.23, 0.01);
    EXPECT_EQ(result.navion.analysis.bound,
              core::BoundType::ComputeBound);
    EXPECT_NEAR(result.navion.requiredSpeedup, 21.1, 0.3);

    // Pipeline anchors: 909 ms host, 810 ms with Navion.
    EXPECT_NEAR(result.hostPipeline.totalLatency().value(), 0.909,
                1e-3);
    EXPECT_NEAR(result.navionPipeline.totalLatency().value(), 0.810,
                0.002);

    // Despite Navion's 172 FPS SLAM kernel, the end-to-end pipeline
    // is barely faster than the host: the bottleneck moved.
    EXPECT_LT(result.navion.throughputHz, 1.3);
    EXPECT_EQ(result.navionPipeline.bottleneck().name,
              "Path planner");
}

} // namespace
