/**
 * @file
 * Unit tests for the workload library: algorithm descriptors, the
 * SPA stage pipeline (incl. the Navion substitution numbers) and
 * the throughput oracle with its classic-roofline bound.
 */

#include <gtest/gtest.h>

#include "components/catalog.hh"
#include "platform/roofline_platform.hh"
#include "support/errors.hh"
#include "workload/algorithm.hh"
#include "workload/spa_pipeline.hh"
#include "workload/throughput.hh"

namespace {

using namespace uavf1;
using namespace uavf1::units;
using namespace uavf1::workload;

TEST(Algorithm, ArithmeticIntensity)
{
    const AutonomyAlgorithm algo("x", Paradigm::EndToEnd, 0.04, 2.0);
    // 0.04 GOP / 2 MB = 4e7 / 2e6 = 20 op/B.
    EXPECT_NEAR(algo.arithmeticIntensity().value(), 20.0, 1e-9);
}

TEST(Algorithm, StandardRegistryContents)
{
    const auto algorithms = standardAlgorithms();
    for (const char *name : {"DroNet", "TrailNet", "CAD2RL", "VGG16",
                             "SPA package delivery"}) {
        EXPECT_TRUE(algorithms.contains(name)) << name;
    }
    EXPECT_EQ(algorithms.byName("DroNet").paradigm(),
              Paradigm::EndToEnd);
    EXPECT_EQ(algorithms.byName("SPA package delivery").paradigm(),
              Paradigm::SensePlanAct);
}

TEST(Algorithm, ParadigmNames)
{
    EXPECT_STREQ(toString(Paradigm::SensePlanAct), "Sense-Plan-Act");
    EXPECT_STREQ(toString(Paradigm::EndToEnd), "End-to-End");
}

TEST(Algorithm, WorkloadSizesOrdered)
{
    const auto algorithms = standardAlgorithms();
    // DroNet is the smallest network, VGG16 the biggest.
    EXPECT_LT(algorithms.byName("DroNet").workPerFrameGop(),
              algorithms.byName("TrailNet").workPerFrameGop());
    EXPECT_LT(algorithms.byName("TrailNet").workPerFrameGop(),
              algorithms.byName("CAD2RL").workPerFrameGop());
    EXPECT_LT(algorithms.byName("CAD2RL").workPerFrameGop(),
              algorithms.byName("VGG16").workPerFrameGop());
}

TEST(SpaPipeline, PaperAnchorLatencies)
{
    const auto pipeline = SpaPipeline::mavbenchPackageDeliveryTx2();
    // Paper Section VI-B: 1.1 Hz end-to-end on TX2.
    EXPECT_NEAR(pipeline.totalLatency().value(), 0.909, 1e-3);
    EXPECT_NEAR(pipeline.throughput().value(), 1.1, 0.005);
    EXPECT_EQ(pipeline.stages().size(), 4u);
}

TEST(SpaPipeline, NavionSubstitutionMatchesPaper)
{
    const auto host = SpaPipeline::mavbenchPackageDeliveryTx2();
    const auto with_navion = host.withStageLatency(
        "SLAM", SpaPipeline::navionSlamLatency(), " + Navion");
    // Paper Section VII: 810 ms total, 1.23 Hz.
    EXPECT_NEAR(with_navion.totalLatency().value(), 0.810, 0.002);
    EXPECT_NEAR(with_navion.throughput().value(), 1.23, 0.01);
    // Navion runs SLAM at 172 FPS.
    EXPECT_NEAR(SpaPipeline::navionSlamLatency().value(),
                1.0 / 172.0, 1e-12);
}

TEST(SpaPipeline, StandardRegistryContents)
{
    const auto &pipelines = standardPipelines();
    EXPECT_EQ(pipelines.size(), 2u);
    EXPECT_TRUE(
        pipelines.contains("MAVBench package delivery (TX2)"));

    // The Navion entry matches the paper's Section VII what-if:
    // SLAM replaced by the 172 FPS kernel, 810 ms end-to-end.
    const auto &navion = pipelines.byName(
        "MAVBench package delivery (TX2) + Navion SLAM");
    EXPECT_NEAR(navion.totalLatency().value(), 0.810, 0.002);
    EXPECT_EQ(navion.measuredOn(), "Nvidia TX2");

    // Unknown names get the catalog's did-you-mean treatment.
    try {
        (void)pipelines.byName("MAVBench package delivery (TX1)");
        FAIL() << "expected ModelError";
    } catch (const ModelError &e) {
        EXPECT_NE(std::string(e.what()).find("did you mean"),
                  std::string::npos);
    }

    // The algorithm mapping and the registry agree on the baseline.
    const auto mapped = standardPipelineFor("SPA package delivery");
    ASSERT_TRUE(mapped.has_value());
    EXPECT_EQ(mapped->name(),
              pipelines.items().front().name());
}

TEST(SpaPipeline, BottleneckIsThePlanner)
{
    const auto pipeline = SpaPipeline::mavbenchPackageDeliveryTx2();
    EXPECT_EQ(pipeline.bottleneck().name, "Path planner");
}

TEST(SpaPipeline, ScaledByChangesAllStages)
{
    const auto pipeline = SpaPipeline::mavbenchPackageDeliveryTx2();
    const auto faster = pipeline.scaledBy(0.5, " (2x host)");
    EXPECT_NEAR(faster.totalLatency().value(),
                pipeline.totalLatency().value() * 0.5, 1e-12);
    EXPECT_THROW(pipeline.scaledBy(0.0, "bad"), ModelError);
}

TEST(SpaPipeline, UnknownStageThrows)
{
    const auto pipeline = SpaPipeline::mavbenchPackageDeliveryTx2();
    EXPECT_THROW(
        pipeline.withStageLatency("Nonexistent", Seconds(0.01), "x"),
        ModelError);
    EXPECT_THROW(SpaPipeline("empty", {}), ModelError);
}

TEST(Oracle, SeededWithPaperMeasurements)
{
    const auto oracle = ThroughputOracle::standard();
    EXPECT_DOUBLE_EQ(
        oracle.measured("DroNet", "Nvidia TX2").value(), 178.0);
    EXPECT_DOUBLE_EQ(
        oracle.measured("DroNet", "Nvidia AGX").value(), 230.0);
    EXPECT_DOUBLE_EQ(
        oracle.measured("DroNet", "Intel NCS").value(), 150.0);
    EXPECT_DOUBLE_EQ(
        oracle.measured("TrailNet", "Nvidia TX2").value(), 55.0);
    EXPECT_DOUBLE_EQ(
        oracle.measured("DroNet", "PULP-GAP8").value(), 6.0);
    EXPECT_DOUBLE_EQ(
        oracle.measured("SPA package delivery", "Nvidia TX2").value(),
        1.1);
}

TEST(Oracle, MissingMeasurementThrows)
{
    const auto oracle = ThroughputOracle::standard();
    EXPECT_THROW(oracle.measured("DroNet", "Intel NUC"), ModelError);
    EXPECT_FALSE(oracle.hasMeasurement("DroNet", "Intel NUC"));
    EXPECT_TRUE(oracle.hasMeasurement("DroNet", "Nvidia TX2"));
}

TEST(Oracle, MeasuredTakesPrecedenceOverBound)
{
    const auto catalog = components::Catalog::standard();
    const auto algorithms = standardAlgorithms();
    const auto oracle = ThroughputOracle::standard();

    const auto measured = oracle.throughput(
        algorithms.byName("DroNet"),
        catalog.computes().byName("Nvidia TX2"));
    EXPECT_EQ(measured.source, ThroughputSource::Measured);
    EXPECT_DOUBLE_EQ(measured.value.value(), 178.0);

    const auto bound = oracle.throughput(
        algorithms.byName("DroNet"),
        catalog.computes().byName("Intel NUC"));
    EXPECT_EQ(bound.source, ThroughputSource::RooflineBound);
    EXPECT_GT(bound.value.value(), 0.0);
}

TEST(Oracle, RooflineBoundIsAnUpperBoundOnMeasurements)
{
    // The classic roofline gives *attainable* performance; every
    // paper measurement must sit at or below it.
    const auto catalog = components::Catalog::standard();
    const auto algorithms = standardAlgorithms();
    const auto oracle = ThroughputOracle::standard();

    const struct { const char *algo, *platform; } pairs[] = {
        {"DroNet", "Nvidia TX2"},   {"DroNet", "Nvidia AGX"},
        {"DroNet", "Intel NCS"},    {"DroNet", "Ras-Pi4"},
        {"DroNet", "PULP-GAP8"},    {"TrailNet", "Nvidia TX2"},
        {"TrailNet", "Ras-Pi4"},    {"VGG16", "Nvidia TX2"},
    };
    for (const auto &pair : pairs) {
        const double bound =
            rooflineBound(algorithms.byName(pair.algo),
                          catalog.computes().byName(pair.platform))
                .value();
        const double measured =
            oracle.measured(pair.algo, pair.platform).value();
        EXPECT_GE(bound, measured)
            << pair.algo << " on " << pair.platform;
    }
}

TEST(Oracle, RooflineBoundSelectsMemoryOrComputeRoof)
{
    // Tiny AI workload on a bandwidth-starved machine must be
    // memory-bound: bound = AI * BW / work.
    const AutonomyAlgorithm streamy("streamy", Paradigm::EndToEnd,
                                    0.001, 100.0); // AI = 0.01 op/B
    const components::ComputePlatform fat_compute({
        .name = "fat",
        .tdp = Watts(10.0),
        .moduleMass = Grams(100.0),
        .peakThroughput = Gops(1000.0),
        .memoryBandwidth = GigabytesPerSecond(1.0),
        .role = components::ComputeRole::GeneralPurpose,
        .description = "",
    });
    const double expected = 0.01 * 1.0 / 0.001; // 10 Hz.
    EXPECT_NEAR(rooflineBound(streamy, fat_compute).value(),
                expected, 1e-9);

    // Compute-heavy workload on the same machine is compute-bound.
    const AutonomyAlgorithm dense("dense", Paradigm::EndToEnd, 10.0,
                                  1.0); // AI = 10000 op/B
    EXPECT_NEAR(rooflineBound(dense, fat_compute).value(),
                1000.0 / 10.0, 1e-9);
}

TEST(Oracle, RooflineBoundRejectsDegenerateInputs)
{
    // Satellite hardening contract: degenerate workload or machine
    // parameters raise a clear ModelError instead of producing
    // inf/NaN Hertz.
    const auto machine = platform::RooflinePlatform::singleCeiling(
        "m", Gops(100.0), GigabytesPerSecond(10.0));

    // Zero / negative work per frame.
    EXPECT_THROW(rooflineBound(0.0, OpsPerByte(1.0), machine),
                 ModelError);
    EXPECT_THROW(rooflineBound(-1.0, OpsPerByte(1.0), machine),
                 ModelError);
    // Zero arithmetic intensity.
    EXPECT_THROW(rooflineBound(1.0, OpsPerByte(0.0), machine),
                 ModelError);
    // Zero bandwidth: rejected at platform construction, before a
    // bound can ever divide by it.
    EXPECT_THROW(platform::RooflinePlatform::singleCeiling(
                     "z", Gops(100.0), GigabytesPerSecond(0.0)),
                 ModelError);
    EXPECT_THROW(platform::RooflinePlatform::singleCeiling(
                     "z", Gops(0.0), GigabytesPerSecond(10.0)),
                 ModelError);
    // Algorithms reject degenerate per-frame profiles at
    // construction, so the algorithm overloads can't reach them.
    EXPECT_THROW(
        AutonomyAlgorithm("bad", Paradigm::EndToEnd, 0.0, 1.0),
        ModelError);
    EXPECT_THROW(
        AutonomyAlgorithm("bad", Paradigm::EndToEnd, -0.5, 1.0),
        ModelError);
    EXPECT_THROW(
        AutonomyAlgorithm("bad", Paradigm::EndToEnd, 1.0, 0.0),
        ModelError);
    // A vanishing work-per-frame against a large roof would round
    // to inf Hz: clear error instead.
    EXPECT_THROW(
        rooflineBound(1e-305, OpsPerByte(1000.0), machine),
        ModelError);
}

TEST(Oracle, FallbackCarriesBindingCeiling)
{
    const auto catalog = components::Catalog::standard();
    const auto algorithms = standardAlgorithms();
    const auto oracle = ThroughputOracle::standard();

    // DroNet (AI ~26.7 op/B) on the NUC: AI x BW = 682 GB/s-op
    // exceeds the 400 GOPS peak, so the compute ceiling binds.
    const auto bound = oracle.throughput(
        algorithms.byName("DroNet"),
        catalog.computes().byName("Intel NUC"));
    EXPECT_EQ(bound.source, ThroughputSource::RooflineBound);
    EXPECT_TRUE(bound.binding.attributed);
    EXPECT_EQ(bound.binding.kind, platform::CeilingKind::Compute);
    EXPECT_EQ(bound.binding.index, 0);
    EXPECT_EQ(catalog.computes()
                  .byName("Intel NUC")
                  .roofline()
                  .ceilingName(bound.binding),
              "effective peak");

    // Measured entries carry no ceiling attribution.
    const auto measured = oracle.throughput(
        algorithms.byName("DroNet"),
        catalog.computes().byName("Nvidia TX2"));
    EXPECT_EQ(measured.source, ThroughputSource::Measured);
    EXPECT_FALSE(measured.binding.attributed);
}

TEST(Oracle, AddMeasurementOverrides)
{
    auto oracle = ThroughputOracle::standard();
    oracle.addMeasurement("DroNet", "Nvidia TX2", Hertz(200.0));
    EXPECT_DOUBLE_EQ(
        oracle.measured("DroNet", "Nvidia TX2").value(), 200.0);
    EXPECT_THROW(
        oracle.addMeasurement("x", "y", Hertz(0.0)), ModelError);
}

TEST(Oracle, SourceNames)
{
    EXPECT_STREQ(toString(ThroughputSource::Measured), "measured");
    EXPECT_STREQ(toString(ThroughputSource::RooflineBound),
                 "roofline-bound");
}

} // namespace
