/**
 * @file
 * Unit tests for the flight simulator: vehicle integration, the
 * dash-and-stop protocol, the validation harness, and the
 * Monte-Carlo per-ceiling binding tallies.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "components/catalog.hh"
#include "exec/thread_pool.hh"
#include "sim/flight_sim.hh"
#include "sim/monte_carlo.hh"
#include "sim/table1.hh"
#include "sim/validation.hh"
#include "sim/vehicle.hh"
#include "studies/presets.hh"
#include "support/errors.hh"

namespace {

using namespace uavf1;
using namespace uavf1::units;
using namespace uavf1::units::literals;
using namespace uavf1::sim;

/** A light test vehicle: 1 kg, T/W 1.5, no drag, no lag. */
VehicleParams
idealVehicle()
{
    VehicleParams params;
    params.mass = 1.0_kg;
    params.usableThrust = Newtons(1.5 * 9.80665);
    params.drag = physics::DragModel::none();
    params.actuationLag = Seconds(0.0);
    params.brakeMargin = 1.0;
    return params;
}

TEST(Vehicle, AvailableAccelerationVerticalExcess)
{
    const VehicleModel vehicle(idealVehicle());
    // twr 1.5 -> a = 0.5 g.
    EXPECT_NEAR(vehicle.availableAcceleration().value(),
                0.5 * 9.80665, 1e-9);
}

TEST(Vehicle, CannotHoverThrows)
{
    VehicleParams params = idealVehicle();
    params.usableThrust = Newtons(9.0);
    EXPECT_THROW(VehicleModel{params}, InfeasibleError);
}

TEST(Vehicle, StepIntegratesConstantAcceleration)
{
    VehicleModel vehicle(idealVehicle());
    vehicle.reset();
    const double a = vehicle.availableAcceleration().value();
    // 1 s of full command at dt = 1 ms.
    for (int i = 0; i < 1000; ++i)
        vehicle.step(Seconds(0.001), a);
    // v = a t; x ~ a t^2 / 2 (semi-implicit Euler is close).
    EXPECT_NEAR(vehicle.state().velocity, a, 1e-9);
    EXPECT_NEAR(vehicle.state().position, 0.5 * a, 0.01);
}

TEST(Vehicle, CommandIsClippedToAvailable)
{
    VehicleModel vehicle(idealVehicle());
    vehicle.reset();
    vehicle.step(Seconds(0.001), 1e6);
    EXPECT_NEAR(vehicle.state().acceleration,
                vehicle.availableAcceleration().value(), 1e-9);
    vehicle.reset();
    vehicle.step(Seconds(0.001), -1e6);
    EXPECT_NEAR(vehicle.state().acceleration,
                -vehicle.availableAcceleration().value(), 1e-9);
}

TEST(Vehicle, ActuationLagDelaysResponse)
{
    VehicleParams lagged = idealVehicle();
    lagged.actuationLag = Seconds(0.2);
    VehicleModel vehicle(lagged);
    vehicle.reset();
    vehicle.step(Seconds(0.001), 1.0);
    // After one millisecond the realized acceleration is far from
    // the command.
    EXPECT_LT(vehicle.state().acceleration, 0.1);
    // After many time constants it converges.
    for (int i = 0; i < 5000; ++i)
        vehicle.step(Seconds(0.001), 1.0);
    EXPECT_NEAR(vehicle.state().acceleration, 1.0, 0.02);
}

TEST(Vehicle, DragOpposesMotion)
{
    VehicleParams draggy = idealVehicle();
    draggy.drag = physics::DragModel(1.0, 0.1);
    VehicleModel vehicle(draggy);
    vehicle.reset();
    // Coast at 5 m/s with zero command: drag must decelerate.
    for (int i = 0; i < 100; ++i)
        vehicle.step(Seconds(0.001), 0.0);
    EXPECT_DOUBLE_EQ(vehicle.state().velocity, 0.0);

    // Manually inject speed by resetting state through steps.
    VehicleModel coaster(draggy);
    coaster.reset();
    const double a = coaster.availableAcceleration().value();
    while (coaster.state().velocity < 3.0)
        coaster.step(Seconds(0.001), a);
    const double v0 = coaster.state().velocity;
    for (int i = 0; i < 1000; ++i)
        coaster.step(Seconds(0.001), 0.0);
    EXPECT_LT(coaster.state().velocity, v0);
}

TEST(FlightSim, SlowCommandStopsSafely)
{
    const VehicleModel vehicle(idealVehicle());
    const FlightSimulator simulator(vehicle);
    StopScenario scenario;
    scenario.commandedVelocity = 1.0_mps; // Far below safe.
    Rng rng(1);
    const TrialResult trial =
        simulator.run(scenario, NoiseParams::none(), rng);
    EXPECT_FALSE(trial.infraction);
    EXPECT_LT(trial.stopMargin, 0.0);
    EXPECT_GT(trial.brakeTime, 0.0);
    // PI velocity tracking overshoots a little; ~10% is expected.
    EXPECT_NEAR(trial.peakVelocity, 1.0, 0.15);
}

TEST(FlightSim, ExcessiveCommandCollides)
{
    const VehicleModel vehicle(idealVehicle());
    const FlightSimulator simulator(vehicle);
    // v_safe at 10 Hz with a ~ 4.9, d = 3 is ~5 m/s; 7 m/s must
    // infract.
    StopScenario scenario;
    scenario.commandedVelocity = 7.0_mps;
    Rng rng(1);
    const TrialResult trial =
        simulator.run(scenario, NoiseParams::none(), rng);
    EXPECT_TRUE(trial.infraction);
    EXPECT_GT(trial.stopMargin, 0.0);
}

TEST(FlightSim, DeterministicWithoutNoise)
{
    const VehicleModel vehicle(idealVehicle());
    const FlightSimulator simulator(vehicle);
    StopScenario scenario;
    scenario.commandedVelocity = 3.0_mps;
    Rng rng_a(1);
    Rng rng_b(2); // Different seed must not matter without noise.
    const TrialResult a =
        simulator.run(scenario, NoiseParams::none(), rng_a);
    const TrialResult b =
        simulator.run(scenario, NoiseParams::none(), rng_b);
    EXPECT_DOUBLE_EQ(a.stopMargin, b.stopMargin);
    EXPECT_DOUBLE_EQ(a.peakVelocity, b.peakVelocity);
}

TEST(FlightSim, TrajectoryRecordingCoversTheDash)
{
    const VehicleModel vehicle(idealVehicle());
    const FlightSimulator simulator(vehicle);
    StopScenario scenario;
    scenario.commandedVelocity = 2.0_mps;
    Rng rng(1);
    const TrialResult trial =
        simulator.run(scenario, NoiseParams::none(), rng, true);
    ASSERT_GT(trial.trajectory.size(), 100u);
    // Time and position are non-decreasing.
    for (std::size_t i = 1; i < trial.trajectory.size(); ++i) {
        EXPECT_GE(trial.trajectory[i].time,
                  trial.trajectory[i - 1].time);
        EXPECT_GE(trial.trajectory[i].position,
                  trial.trajectory[i - 1].position - 1e-9);
    }
    // The dash ends where the vehicle stopped.
    EXPECT_NEAR(trial.trajectory.back().position,
                scenario.runUp.value() +
                    scenario.obstacleDistance.value() +
                    trial.stopMargin,
                1e-6);
}

TEST(FlightSim, InfractionMonotoneInCommandedVelocity)
{
    const VehicleModel vehicle(idealVehicle());
    const FlightSimulator simulator(vehicle);
    bool seen_infraction = false;
    for (double v = 1.0; v <= 8.0; v += 0.5) {
        StopScenario scenario;
        scenario.commandedVelocity = MetersPerSecond(v);
        Rng rng(1);
        const TrialResult trial =
            simulator.run(scenario, NoiseParams::none(), rng);
        if (seen_infraction) {
            EXPECT_TRUE(trial.infraction)
                << "safe again at v = " << v;
        }
        seen_infraction = seen_infraction || trial.infraction;
    }
    EXPECT_TRUE(seen_infraction);
}

TEST(Validation, PredictionMatchesSafetyModel)
{
    ValidationCase vcase;
    vcase.name = "test";
    vcase.vehicle = idealVehicle();
    const double predicted =
        ValidationHarness::predictedSafeVelocity(vcase);
    // a = 0.5 g, d = 3 m, T = 0.1 s.
    const core::SafetyModel safety(
        MetersPerSecondSquared(0.5 * 9.80665), Meters(3.0));
    EXPECT_NEAR(predicted,
                safety.safeVelocity(Seconds(0.1)).value(), 1e-12);
}

TEST(Validation, ObservedIsBelowPredictionWithRealism)
{
    // With lag + noise, the simulated flight must be slower than
    // the optimistic model — the paper's central observation.
    ValidationCase vcase;
    vcase.name = "realism";
    vcase.vehicle = idealVehicle();
    vcase.vehicle.actuationLag = Seconds(0.15);
    vcase.vehicle.drag = physics::DragModel(1.1, 0.022);
    vcase.vehicle.brakeMargin = 0.95;
    vcase.seed = 7;
    const ValidationResult result =
        ValidationHarness::validate(vcase);
    EXPECT_GT(result.observed, 0.0);
    EXPECT_GT(result.predicted, result.observed);
    EXPECT_GT(result.errorPercent, 0.0);
    EXPECT_LT(result.errorPercent, 25.0);
    EXPECT_FALSE(result.sweep.empty());
}

TEST(Validation, SweepStepsAreUniformAndCoverTheRange)
{
    // The set-point loop indexes by integer step; accumulating
    // `v += resolution` drifted and could skip or duplicate the
    // final set-point for drift-prone resolutions like 0.07.
    ValidationCase vcase;
    vcase.name = "stepping";
    vcase.vehicle = idealVehicle();
    vcase.trialsPerSetpoint = 1;
    vcase.sweepResolution = 0.07;
    const ValidationResult result =
        ValidationHarness::validate(vcase);

    const double v_lo =
        std::max(vcase.sweepResolution, 0.4 * result.predicted);
    const double v_hi = 1.3 * result.predicted;
    ASSERT_FALSE(result.sweep.empty());
    for (std::size_t i = 0; i < result.sweep.size(); ++i) {
        EXPECT_NEAR(result.sweep[i].velocity,
                    v_lo + i * vcase.sweepResolution, 1e-12);
    }
    // The last set-point sits within one resolution below v_hi —
    // neither past the ceiling nor short of it by a full step.
    const double last = result.sweep.back().velocity;
    EXPECT_LE(last, v_hi + 1e-9);
    EXPECT_GT(last + vcase.sweepResolution, v_hi);
}

TEST(Validation, Table1CasesAreWellFormed)
{
    const auto cases = table1ValidationCases();
    ASSERT_EQ(cases.size(), 4u);
    EXPECT_EQ(cases[0].name, "UAV-A");
    EXPECT_EQ(cases[3].name, "UAV-D");
    // Table I masses: 1620/1830/1670/1720 g.
    EXPECT_NEAR(cases[0].vehicle.mass.value(), 1.620, 1e-9);
    EXPECT_NEAR(cases[1].vehicle.mass.value(), 1.830, 1e-9);
    EXPECT_NEAR(cases[2].vehicle.mass.value(), 1.670, 1e-9);
    EXPECT_NEAR(cases[3].vehicle.mass.value(), 1.720, 1e-9);
    // Protocol: 3 m obstacle, 3 m sensing, 10 Hz loop, 5 trials.
    for (const auto &vcase : cases) {
        EXPECT_DOUBLE_EQ(vcase.scenario.obstacleDistance.value(),
                         3.0);
        EXPECT_DOUBLE_EQ(vcase.scenario.sensingRange.value(), 3.0);
        EXPECT_DOUBLE_EQ(vcase.scenario.actionRate.value(), 10.0);
        EXPECT_EQ(vcase.trialsPerSetpoint, 5);
    }
    EXPECT_EQ(table1PaperErrorPercent().size(), 4u);
    EXPECT_THROW(table1TakeoffMass('E'), ModelError);
}

TEST(Validation, Table1PredictionOrderingMatchesPaper)
{
    // Paper ordering: A fastest, then C, then D, then B slowest.
    const auto cases = table1ValidationCases();
    const double v_a =
        ValidationHarness::predictedSafeVelocity(cases[0]);
    const double v_b =
        ValidationHarness::predictedSafeVelocity(cases[1]);
    const double v_c =
        ValidationHarness::predictedSafeVelocity(cases[2]);
    const double v_d =
        ValidationHarness::predictedSafeVelocity(cases[3]);
    EXPECT_GT(v_a, v_c);
    EXPECT_GT(v_c, v_d);
    EXPECT_GT(v_d, v_b);
}

TEST(Validation, RecordTrajectoryUsesCommandedVelocity)
{
    const auto cases = table1ValidationCases();
    const TrialResult trial =
        ValidationHarness::recordTrajectory(cases[0], 1.5);
    EXPECT_FALSE(trial.trajectory.empty());
    EXPECT_NEAR(trial.peakVelocity, 1.5, 0.1);
}

/** A TX2-family spec whose AI uncertainty straddles the machine
 * knee (1330 / 59.7 ~ 22.3 op/B), so both compute and memory
 * ceilings bind with nonzero probability. */
UncertaintySpec
ceilingSpec()
{
    UncertaintySpec spec;
    spec.nominal = studies::pelicanInputs(Hertz(55.0));
    spec.platform = components::Catalog::standard().rooflines().byName(
        "Nvidia TX2");
    spec.profile.ai = OpsPerByte(22.3);
    spec.workPerFrameGop = 0.04;
    spec.aiRelStd = 0.4;
    return spec;
}

TEST(MonteCarloCeilings, TalliesProbabilityPerCeiling)
{
    // Legacy specs (no platform) report no per-ceiling tallies and
    // keep the scalar f_compute perturbation.
    UncertaintySpec legacy;
    legacy.nominal = studies::pelicanInputs(Hertz(55.0));
    const auto plain = MonteCarloAnalyzer(legacy).run(1000, 1);
    EXPECT_TRUE(plain.probComputeCeilingBinds.empty());
    EXPECT_TRUE(plain.probMemoryCeilingBinds.empty());

    const UncertaintySpec spec = ceilingSpec();
    const auto result = MonteCarloAnalyzer(spec).run(20000, 1);
    ASSERT_EQ(result.probComputeCeilingBinds.size(), 3u);
    ASSERT_EQ(result.probMemoryCeilingBinds.size(), 2u);

    // Every sample has exactly one binding ceiling.
    const double total =
        std::accumulate(result.probComputeCeilingBinds.begin(),
                        result.probComputeCeilingBinds.end(), 0.0) +
        std::accumulate(result.probMemoryCeilingBinds.begin(),
                        result.probMemoryCeilingBinds.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-12);

    // Around the knee, the GPU roof (compute index 2) and the DRAM
    // level (memory index 0) both bind with real probability; the
    // never-binding scalar/SIMD/on-chip ceilings stay at zero.
    EXPECT_GT(result.probComputeCeilingBinds[2], 0.05);
    EXPECT_GT(result.probMemoryCeilingBinds[0], 0.05);
    EXPECT_EQ(result.probComputeCeilingBinds[0], 0.0);
    EXPECT_EQ(result.probComputeCeilingBinds[1], 0.0);
    EXPECT_EQ(result.probMemoryCeilingBinds[1], 0.0);
}

TEST(MonteCarloCeilings, TalliesAreBitIdenticalAcrossThreads)
{
    const UncertaintySpec spec = ceilingSpec();
    const MonteCarloAnalyzer analyzer(spec);
    exec::ThreadPool pool1(1);
    exec::ThreadPool pool8(8);
    // Spans many sample blocks so the chunk-order merge is
    // genuinely exercised.
    const auto serial = analyzer.run(50000, 9, {.pool = &pool1});
    const auto parallel = analyzer.run(50000, 9, {.pool = &pool8});
    EXPECT_EQ(serial.safeVelocity.mean, parallel.safeVelocity.mean);
    EXPECT_EQ(serial.probComputeCeilingBinds,
              parallel.probComputeCeilingBinds);
    EXPECT_EQ(serial.probMemoryCeilingBinds,
              parallel.probMemoryCeilingBinds);
}

TEST(MonteCarloCeilings, ValidatesThePlatformPathUpFront)
{
    UncertaintySpec spec = ceilingSpec();
    spec.workPerFrameGop = 0.0;
    EXPECT_THROW(MonteCarloAnalyzer{spec}, ModelError);

    spec = ceilingSpec();
    spec.opIndex = 99;
    EXPECT_THROW(MonteCarloAnalyzer{spec}, ModelError);

    spec = ceilingSpec();
    spec.aiRelStd = -0.1;
    EXPECT_THROW(MonteCarloAnalyzer{spec}, ModelError);
}

} // namespace
