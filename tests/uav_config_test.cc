/**
 * @file
 * Unit tests for UavConfig and its builder: validation, mass
 * roll-up, throughput resolution, overrides and redundancy
 * integration.
 */

#include <gtest/gtest.h>

#include "components/catalog.hh"
#include "core/uav_config.hh"
#include "support/errors.hh"

namespace {

using namespace uavf1;
using namespace uavf1::units;
using namespace uavf1::units::literals;
using core::UavConfig;

/** A complete, valid Pelican + TX2 + DroNet builder. */
UavConfig::Builder
pelicanBuilder()
{
    const auto catalog = components::Catalog::standard();
    const auto algorithms = workload::standardAlgorithms();
    UavConfig::Builder builder("test-pelican");
    builder.airframe(catalog.airframes().byName("AscTec Pelican"))
        .sensor(catalog.sensors().byName("RGB-D 60FPS (4.5m)"))
        .compute(catalog.computes().byName("Nvidia TX2"))
        .algorithm(algorithms.byName("DroNet"));
    return builder;
}

TEST(UavConfigBuilder, RequiresAirframeAndSensor)
{
    UavConfig::Builder no_airframe("x");
    no_airframe.sensor(components::Catalog::standard()
                           .sensors()
                           .byName("60FPS camera (10m)"));
    no_airframe.computeRateOverride(100.0_hz);
    EXPECT_THROW(no_airframe.build(), ModelError);

    UavConfig::Builder no_sensor("x");
    no_sensor.airframe(components::Catalog::standard()
                           .airframes()
                           .byName("AscTec Pelican"));
    no_sensor.computeRateOverride(100.0_hz);
    EXPECT_THROW(no_sensor.build(), ModelError);

    EXPECT_THROW(UavConfig::Builder(""), ModelError);
}

TEST(UavConfigBuilder, RequiresAComputeRateSource)
{
    const auto catalog = components::Catalog::standard();
    UavConfig::Builder builder("x");
    builder.airframe(catalog.airframes().byName("AscTec Pelican"))
        .sensor(catalog.sensors().byName("60FPS camera (10m)"));
    // No override and no compute+algorithm pair.
    EXPECT_THROW(builder.build(), ModelError);
    // Platform alone is not enough.
    builder.compute(catalog.computes().byName("Nvidia TX2"));
    EXPECT_THROW(builder.build(), ModelError);
}

TEST(UavConfig, ComputeRateFromOracle)
{
    const UavConfig config = pelicanBuilder().build();
    EXPECT_DOUBLE_EQ(config.computeRate().value(), 178.0);
    EXPECT_EQ(config.computeRateSource(),
              workload::ThroughputSource::Measured);
}

TEST(UavConfig, ComputeRateOverrideWins)
{
    const UavConfig config =
        pelicanBuilder().computeRateOverride(55.0_hz).build();
    EXPECT_DOUBLE_EQ(config.computeRate().value(), 55.0);
}

TEST(UavConfig, MassRollUpIncludesEverything)
{
    const auto catalog = components::Catalog::standard();
    const UavConfig config =
        pelicanBuilder()
            .battery(catalog.batteries().byName("3S 5000mAh"))
            .payload("calibration weight", 50.0_g)
            .build();

    const auto &budget = config.massBudget();
    // Airframe 1000 + FC 10 + sensor 72 + TX2 (85 + ~41 heatsink)
    // + battery 380 + weight 50.
    EXPECT_NEAR(config.takeoffMass().value(),
                1000.0 + 10.0 + 72.0 + 85.0 + 41.2 + 380.0 + 50.0,
                1.0);
    EXPECT_DOUBLE_EQ(budget.massOf("calibration weight").value(),
                     50.0);
    EXPECT_GE(budget.items().size(), 6u);
}

TEST(UavConfig, AMaxOverrideBypassesPhysics)
{
    const UavConfig config =
        pelicanBuilder().aMaxOverride(4.12_mps2).build();
    EXPECT_DOUBLE_EQ(config.maxAcceleration().value(), 4.12);
}

TEST(UavConfig, InfeasibleBuildThrows)
{
    // Loading a Pelican with an Intel NUC plus a pile of lead
    // exceeds its thrust.
    const auto catalog = components::Catalog::standard();
    const auto algorithms = workload::standardAlgorithms();
    UavConfig::Builder builder("overloaded");
    builder.airframe(catalog.airframes().byName("AscTec Pelican"))
        .sensor(catalog.sensors().byName("RGB-D 60FPS (4.5m)"))
        .compute(catalog.computes().byName("Intel NUC"))
        .algorithm(algorithms.byName("DroNet"))
        .payload("lead brick", 2000.0_g);
    EXPECT_THROW(builder.build(), InfeasibleError);
    // With an a_max override, feasibility is the caller's problem.
    EXPECT_NO_THROW(builder.aMaxOverride(1.0_mps2).build());
}

TEST(UavConfig, RedundancyAffectsMassAndRate)
{
    const UavConfig single = pelicanBuilder().build();
    const UavConfig dual =
        pelicanBuilder()
            .redundancy(pipeline::ModularRedundancy(
                pipeline::RedundancyScheme::Dual))
            .build();
    EXPECT_GT(dual.takeoffMass().value(),
              single.takeoffMass().value() + 100.0);
    EXPECT_LT(dual.computeRate().value(),
              single.computeRate().value());
    EXPECT_DOUBLE_EQ(dual.computePower().value(),
                     2.0 * single.computePower().value());
    // Heavier -> lower a_max.
    EXPECT_LT(dual.maxAcceleration().value(),
              single.maxAcceleration().value());
}

TEST(UavConfig, ThrustDerateLowersAcceleration)
{
    const UavConfig full = pelicanBuilder().build();
    const UavConfig derated =
        pelicanBuilder().thrustDerate(0.833).build();
    EXPECT_LT(derated.maxAcceleration().value(),
              full.maxAcceleration().value());
    EXPECT_NEAR(derated.totalThrust().value(),
                full.totalThrust().value() * 0.833, 1e-9);
}

TEST(UavConfig, F1InputsWiring)
{
    const UavConfig config = pelicanBuilder().build();
    const core::F1Inputs inputs = config.f1Inputs();
    EXPECT_DOUBLE_EQ(inputs.sensorRate.value(), 60.0);
    EXPECT_DOUBLE_EQ(inputs.sensingRange.value(), 4.5);
    EXPECT_DOUBLE_EQ(inputs.computeRate.value(), 178.0);
    EXPECT_DOUBLE_EQ(inputs.controlRate.value(), 1000.0);
    EXPECT_DOUBLE_EQ(inputs.aMax.value(),
                     config.maxAcceleration().value());
    // The model analyzes without throwing.
    EXPECT_NO_THROW(config.f1Model().analyze());
}

TEST(UavConfig, DescribeMentionsKeyFacts)
{
    const UavConfig config = pelicanBuilder().build();
    const std::string text = config.describe();
    EXPECT_NE(text.find("AscTec Pelican"), std::string::npos);
    EXPECT_NE(text.find("Nvidia TX2"), std::string::npos);
    EXPECT_NE(text.find("DroNet"), std::string::npos);
    EXPECT_NE(text.find("a_max"), std::string::npos);
}

TEST(UavConfig, BuilderKnobValidation)
{
    UavConfig::Builder builder("x");
    EXPECT_THROW(builder.thrustDerate(0.0), ModelError);
    EXPECT_THROW(builder.thrustDerate(1.5), ModelError);
    EXPECT_THROW(builder.computeRateOverride(Hertz(0.0)), ModelError);
    EXPECT_THROW(builder.aMaxOverride(MetersPerSecondSquared(0.0)),
                 ModelError);
    EXPECT_THROW(builder.kneeFraction(0.0), ModelError);
    EXPECT_THROW(builder.kneeFraction(1.0), ModelError);
}

TEST(UavConfig, CustomKneeFractionPropagates)
{
    const UavConfig config =
        pelicanBuilder().kneeFraction(0.95).build();
    EXPECT_DOUBLE_EQ(config.f1Inputs().kneeFraction, 0.95);
    // A looser knee criterion sits at a lower throughput.
    const UavConfig strict =
        pelicanBuilder().kneeFraction(0.99).build();
    EXPECT_LT(config.f1Model().analyze().kneeThroughput.value(),
              strict.f1Model().analyze().kneeThroughput.value());
}

} // namespace
