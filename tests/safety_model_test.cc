/**
 * @file
 * Unit tests for the Eq. 4 safety model, including the paper's
 * Fig. 5 worked example (a = 50 m/s^2, d = 10 m) and the model's
 * analytic invariants.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/safety_model.hh"
#include "support/errors.hh"

namespace {

using namespace uavf1;
using namespace uavf1::units;
using core::SafetyModel;

/** The paper's Fig. 5 example model. */
SafetyModel
fig5Model()
{
    return SafetyModel(MetersPerSecondSquared(50.0), Meters(10.0));
}

TEST(SafetyModel, Fig5Roof)
{
    // Paper: as T -> 0, velocity -> 32 m/s (exactly sqrt(1000)).
    EXPECT_NEAR(fig5Model().physicsRoof().value(),
                std::sqrt(2.0 * 10.0 * 50.0), 1e-12);
    EXPECT_NEAR(fig5Model().physicsRoof().value(), 31.62, 0.01);
}

TEST(SafetyModel, Fig5PointA)
{
    // Paper: point A at 1 Hz sits near 10 m/s.
    const double v =
        fig5Model().safeVelocityAtRate(Hertz(1.0)).value();
    EXPECT_NEAR(v, 50.0 * (std::sqrt(1.0 + 0.4) - 1.0), 1e-12);
    EXPECT_NEAR(v, 9.16, 0.01);
}

TEST(SafetyModel, Fig5KneeRegion)
{
    // Paper: at 100 Hz the velocity is ~30 m/s and further
    // throughput buys almost nothing.
    const double v100 =
        fig5Model().safeVelocityAtRate(Hertz(100.0)).value();
    EXPECT_NEAR(v100, 31.13, 0.01);
    const double v10k =
        fig5Model().safeVelocityAtRate(Hertz(10000.0)).value();
    EXPECT_LT(v10k / v100, 1.02); // < 2% for 100x the throughput.
}

TEST(SafetyModel, Eq4ClosedForm)
{
    // Hand-computed: a = 2, d = 4, T = 1:
    // v = 2 (sqrt(1 + 4) - 1).
    const SafetyModel model(MetersPerSecondSquared(2.0), Meters(4.0));
    EXPECT_NEAR(model.safeVelocity(Seconds(1.0)).value(),
                2.0 * (std::sqrt(5.0) - 1.0), 1e-12);
}

TEST(SafetyModel, StoppingDistanceIdentity)
{
    // The defining property of Eq. 4: cruising exactly at v_safe,
    // reaction travel plus braking distance equals the sensing
    // range.
    const SafetyModel model(MetersPerSecondSquared(4.12),
                            Meters(2.73));
    for (double t : {0.01, 0.1, 0.5, 1.0, 2.0}) {
        const auto v = model.safeVelocity(Seconds(t));
        EXPECT_NEAR(model.stoppingDistance(v, Seconds(t)).value(),
                    2.73, 1e-9)
            << "T = " << t;
    }
}

TEST(SafetyModel, InverseRoundTrip)
{
    const SafetyModel model(MetersPerSecondSquared(1.5134),
                            Meters(3.0));
    for (double t : {0.05, 0.1, 0.4, 1.0}) {
        const auto v = model.safeVelocity(Seconds(t));
        EXPECT_NEAR(model.actionPeriodFor(v).value(), t, 1e-9);
    }
    // The roof maps to a zero period.
    EXPECT_NEAR(
        model.actionPeriodFor(model.physicsRoof()).value(), 0.0,
        1e-9);
    // Above the roof is rejected.
    EXPECT_THROW(
        model.actionPeriodFor(model.physicsRoof() * 1.01),
        ModelError);
}

TEST(SafetyModel, KneeClosedFormMatchesDefinition)
{
    const SafetyModel model(MetersPerSecondSquared(4.12),
                            Meters(2.73));
    const double fraction = 0.98;
    const Hertz knee = model.kneeThroughput(fraction);
    // At the knee, the velocity is exactly `fraction` of the roof.
    const double v_knee = model.safeVelocityAtRate(knee).value();
    EXPECT_NEAR(v_knee, fraction * model.physicsRoof().value(),
                1e-9);
}

TEST(SafetyModel, PaperKneeCalibrations)
{
    // The calibrated case-study presets (see studies/presets.hh).
    const SafetyModel pelican(MetersPerSecondSquared(4.12),
                              Meters(2.73));
    EXPECT_NEAR(pelican.kneeThroughput().value(), 43.0, 0.2);

    const SafetyModel spark(MetersPerSecondSquared(8.082),
                            Meters(11.0));
    EXPECT_NEAR(spark.kneeThroughput().value(), 30.0, 0.1);

    const SafetyModel nano(MetersPerSecondSquared(3.310),
                           Meters(6.0));
    EXPECT_NEAR(nano.kneeThroughput().value(), 26.0, 0.1);
}

TEST(SafetyModel, VelocityAtInfinitePeriodGoesToZero)
{
    const SafetyModel model = fig5Model();
    EXPECT_LT(model.safeVelocity(Seconds(1e6)).value(), 1e-3);
    EXPECT_GT(model.safeVelocity(Seconds(1e6)).value(), 0.0);
}

TEST(SafetyModel, RejectsBadArguments)
{
    EXPECT_THROW(
        SafetyModel(MetersPerSecondSquared(0.0), Meters(10.0)),
        ModelError);
    EXPECT_THROW(
        SafetyModel(MetersPerSecondSquared(50.0), Meters(-1.0)),
        ModelError);
    const SafetyModel model = fig5Model();
    EXPECT_THROW(model.safeVelocity(Seconds(-0.1)), ModelError);
    EXPECT_THROW(model.safeVelocityAtRate(Hertz(0.0)), ModelError);
    EXPECT_THROW(model.kneeThroughput(0.0), ModelError);
    EXPECT_THROW(model.kneeThroughput(1.0), ModelError);
}

/**
 * Property sweep: monotonicity of Eq. 4 in all three arguments.
 */
struct SafetyParams
{
    double aMax;
    double range;
};

class SafetyPropertyTest
    : public ::testing::TestWithParam<SafetyParams>
{
};

TEST_P(SafetyPropertyTest, VelocityDecreasesWithActionPeriod)
{
    const auto p = GetParam();
    const SafetyModel model(MetersPerSecondSquared(p.aMax),
                            Meters(p.range));
    double previous = model.physicsRoof().value() + 1e-9;
    for (double t = 0.01; t <= 5.0; t *= 1.7) {
        const double v = model.safeVelocity(Seconds(t)).value();
        EXPECT_LT(v, previous) << "T = " << t;
        EXPECT_GT(v, 0.0);
        previous = v;
    }
}

TEST_P(SafetyPropertyTest, VelocityIncreasesWithRangeAndAccel)
{
    const auto p = GetParam();
    const SafetyModel base(MetersPerSecondSquared(p.aMax),
                           Meters(p.range));
    const SafetyModel longer(MetersPerSecondSquared(p.aMax),
                             Meters(p.range * 2.0));
    const SafetyModel stronger(MetersPerSecondSquared(p.aMax * 2.0),
                               Meters(p.range));
    const Seconds t(0.1);
    EXPECT_GT(longer.safeVelocity(t).value(),
              base.safeVelocity(t).value());
    EXPECT_GT(stronger.safeVelocity(t).value(),
              base.safeVelocity(t).value());
}

TEST_P(SafetyPropertyTest, KneeScalesAsSqrtAOverD)
{
    const auto p = GetParam();
    const SafetyModel base(MetersPerSecondSquared(p.aMax),
                           Meters(p.range));
    const SafetyModel quad_a(MetersPerSecondSquared(4.0 * p.aMax),
                             Meters(p.range));
    const SafetyModel quad_d(MetersPerSecondSquared(p.aMax),
                             Meters(4.0 * p.range));
    // f_k ~ sqrt(a / 2d): 4x a doubles the knee, 4x d halves it.
    EXPECT_NEAR(quad_a.kneeThroughput().value(),
                2.0 * base.kneeThroughput().value(), 1e-9);
    EXPECT_NEAR(quad_d.kneeThroughput().value(),
                0.5 * base.kneeThroughput().value(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    ParamSweep, SafetyPropertyTest,
    ::testing::Values(SafetyParams{0.5, 3.0}, SafetyParams{1.5, 3.0},
                      SafetyParams{4.12, 2.73},
                      SafetyParams{8.082, 11.0},
                      SafetyParams{50.0, 10.0},
                      SafetyParams{3.31, 6.0}));

} // namespace
