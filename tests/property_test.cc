/**
 * @file
 * Cross-module property tests: invariants that must hold across
 * wide parameter sweeps, exercised with parameterized gtest suites.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/f1_model.hh"
#include "core/safety_model.hh"
#include "physics/acceleration.hh"
#include "pipeline/action_pipeline.hh"
#include "sim/flight_sim.hh"
#include "sim/vehicle.hh"
#include "thermal/heatsink.hh"

namespace {

using namespace uavf1;
using namespace uavf1::units;

/** (f_sensor, f_compute, f_control) triples for pipeline sweeps. */
struct Rates
{
    double sensor;
    double compute;
    double control;
};

class PipelinePropertyTest : public ::testing::TestWithParam<Rates>
{
};

TEST_P(PipelinePropertyTest, Eq3IsTheMinimum)
{
    const Rates r = GetParam();
    const auto pipeline = pipeline::ActionPipeline::senseComputeControl(
        Hertz(r.sensor), Hertz(r.compute), Hertz(r.control));
    const double expected =
        std::min({r.sensor, r.compute, r.control});
    EXPECT_DOUBLE_EQ(pipeline.actionThroughput().value(), expected);
}

TEST_P(PipelinePropertyTest, LatencyBoundsBracketThePeriod)
{
    const Rates r = GetParam();
    const auto pipeline = pipeline::ActionPipeline::senseComputeControl(
        Hertz(r.sensor), Hertz(r.compute), Hertz(r.control));
    // Eq. 1 <= T_action <= Eq. 2.
    EXPECT_LE(pipeline.latencyLowerBound().value(),
              pipeline.actionPeriod().value() + 1e-15);
    EXPECT_GE(pipeline.latencyUpperBound().value(),
              pipeline.actionPeriod().value() - 1e-15);
    // Eq. 2 never exceeds 3x Eq. 1 for a three-stage pipeline.
    EXPECT_LE(pipeline.latencyUpperBound().value(),
              3.0 * pipeline.latencyLowerBound().value() + 1e-15);
}

TEST_P(PipelinePropertyTest, SpeedingUpANonBottleneckChangesNothing)
{
    const Rates r = GetParam();
    const auto base = pipeline::ActionPipeline::senseComputeControl(
        Hertz(r.sensor), Hertz(r.compute), Hertz(r.control));
    const auto &bottleneck = base.bottleneck();
    // Double every non-bottleneck stage: action throughput must be
    // unchanged.
    const double s =
        bottleneck.name == "sensor" ? r.sensor : r.sensor * 2.0;
    const double c =
        bottleneck.name == "compute" ? r.compute : r.compute * 2.0;
    const double k =
        bottleneck.name == "control" ? r.control : r.control * 2.0;
    const auto boosted = pipeline::ActionPipeline::senseComputeControl(
        Hertz(s), Hertz(c), Hertz(k));
    EXPECT_DOUBLE_EQ(boosted.actionThroughput().value(),
                     base.actionThroughput().value());
}

INSTANTIATE_TEST_SUITE_P(
    RateSweep, PipelinePropertyTest,
    ::testing::Values(Rates{60.0, 178.0, 1000.0},
                      Rates{60.0, 1.1, 1000.0},
                      Rates{10.0, 150.0, 1000.0},
                      Rates{60.0, 6.0, 100.0},
                      Rates{30.0, 30.0, 30.0},
                      Rates{240.0, 0.065, 8000.0}));

/** F-1 invariants over a grid of physics and rates. */
struct F1Sweep
{
    double aMax;
    double range;
    double compute;
};

class F1PropertyTest : public ::testing::TestWithParam<F1Sweep>
{
};

TEST_P(F1PropertyTest, SafeVelocityNeverExceedsRoof)
{
    const F1Sweep p = GetParam();
    core::F1Inputs inputs;
    inputs.aMax = MetersPerSecondSquared(p.aMax);
    inputs.sensingRange = Meters(p.range);
    inputs.sensorRate = Hertz(60.0);
    inputs.computeRate = Hertz(p.compute);
    const auto analysis = core::F1Model(inputs).analyze();
    EXPECT_LE(analysis.safeVelocity.value(),
              analysis.roofVelocity.value());
    EXPECT_LE(analysis.kneeVelocity.value(),
              analysis.roofVelocity.value());
    EXPECT_GT(analysis.safeVelocity.value(), 0.0);
}

TEST_P(F1PropertyTest, FasterComputeNeverHurts)
{
    const F1Sweep p = GetParam();
    core::F1Inputs inputs;
    inputs.aMax = MetersPerSecondSquared(p.aMax);
    inputs.sensingRange = Meters(p.range);
    inputs.sensorRate = Hertz(60.0);
    inputs.computeRate = Hertz(p.compute);
    const core::F1Model model(inputs);
    const auto base = model.analyze();
    const auto faster =
        model.withComputeRate(Hertz(p.compute * 2.0)).analyze();
    EXPECT_GE(faster.safeVelocity.value(),
              base.safeVelocity.value() - 1e-12);
}

TEST_P(F1PropertyTest, ExactlyOneBoundHolds)
{
    const F1Sweep p = GetParam();
    core::F1Inputs inputs;
    inputs.aMax = MetersPerSecondSquared(p.aMax);
    inputs.sensingRange = Meters(p.range);
    inputs.sensorRate = Hertz(60.0);
    inputs.computeRate = Hertz(p.compute);
    const auto analysis = core::F1Model(inputs).analyze();
    if (analysis.bound == core::BoundType::PhysicsBound) {
        EXPECT_GE(analysis.actionThroughput.value(),
                  analysis.kneeThroughput.value());
        EXPECT_GE(analysis.overProvisionFactor, 1.0);
        EXPECT_DOUBLE_EQ(analysis.requiredSpeedup, 1.0);
    } else {
        EXPECT_LT(analysis.actionThroughput.value(),
                  analysis.kneeThroughput.value());
        EXPECT_GT(analysis.requiredSpeedup, 1.0);
        EXPECT_DOUBLE_EQ(analysis.overProvisionFactor, 1.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    GridSweep, F1PropertyTest,
    ::testing::Values(F1Sweep{0.5, 3.0, 1.1}, F1Sweep{0.5, 3.0, 178.0},
                      F1Sweep{4.12, 2.73, 55.0},
                      F1Sweep{4.12, 2.73, 6.0},
                      F1Sweep{8.082, 11.0, 178.0},
                      F1Sweep{50.0, 10.0, 100.0},
                      F1Sweep{3.31, 6.0, 0.065},
                      F1Sweep{20.0, 1.0, 500.0}));

/** Acceleration-law invariants over thrust-to-weight ratios. */
class AccelLawTest : public ::testing::TestWithParam<double>
{
};

TEST_P(AccelLawTest, HoverConstrainedDominatesVerticalExcess)
{
    const double twr = GetParam();
    const Newtons thrust(twr * 9.80665);
    const Kilograms mass(1.0);
    const auto hover = physics::maxAcceleration(
        thrust, mass,
        {.law = physics::AccelerationLaw::HoverConstrained});
    const auto excess = physics::maxAcceleration(
        thrust, mass,
        {.law = physics::AccelerationLaw::VerticalExcess});
    // sqrt(twr^2 - 1) >= twr - 1 for all twr >= 1.
    EXPECT_GE(hover.value(), excess.value() - 1e-12);
}

TEST_P(AccelLawTest, TiltClipNeverExceedsHoverConstrained)
{
    const double twr = GetParam();
    const Newtons thrust(twr * 9.80665);
    const Kilograms mass(1.0);
    const auto hover = physics::maxAcceleration(
        thrust, mass,
        {.law = physics::AccelerationLaw::HoverConstrained});
    const auto tilted = physics::maxAcceleration(
        thrust, mass,
        {.law = physics::AccelerationLaw::TiltLimited,
         .maxTilt = Degrees(25.0)});
    EXPECT_LE(tilted.value(), hover.value() + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(TwrSweep, AccelLawTest,
                         ::testing::Values(1.01, 1.05, 1.15, 1.5,
                                           2.0, 3.0, 5.0));

/** Simulator monotonicity: heavier payload -> lower observed safe
 * velocity. */
class SimPayloadTest : public ::testing::TestWithParam<double>
{
};

TEST_P(SimPayloadTest, HeavierIsNeverSaferAtTheSameSpeed)
{
    const double extra_kg = GetParam();
    sim::VehicleParams light;
    light.mass = Kilograms(1.62);
    light.usableThrust =
        gramsForceToNewtons(Grams(1870.0));
    light.actuationLag = Seconds(0.15);
    sim::VehicleParams heavy = light;
    heavy.mass = Kilograms(1.62 + extra_kg);

    sim::StopScenario scenario;
    scenario.commandedVelocity = MetersPerSecond(1.6);

    Rng rng_a(3);
    Rng rng_b(3);
    const auto light_trial = sim::FlightSimulator(
        sim::VehicleModel(light))
        .run(scenario, sim::NoiseParams::none(), rng_a);
    const auto heavy_trial = sim::FlightSimulator(
        sim::VehicleModel(heavy))
        .run(scenario, sim::NoiseParams::none(), rng_b);
    // The heavier vehicle stops later (larger margin toward the
    // obstacle) at the same commanded speed.
    EXPECT_GE(heavy_trial.stopMargin, light_trial.stopMargin - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(PayloadSweep, SimPayloadTest,
                         ::testing::Values(0.02, 0.05, 0.1, 0.15));

/** Heat-sink model: scaling TDP by k scales mass by ~k (gamma ~ 1),
 * and the mass is superlinear-free (no pathological jumps). */
class HeatsinkScalingTest : public ::testing::TestWithParam<double>
{
};

TEST_P(HeatsinkScalingTest, NearLinearScaling)
{
    const double tdp = GetParam();
    const thermal::HeatsinkModel model;
    const double m1 = model.mass(Watts(tdp)).value();
    const double m2 = model.mass(Watts(2.0 * tdp)).value();
    EXPECT_GT(m2 / m1, 1.8);
    EXPECT_LT(m2 / m1, 2.2);
}

INSTANTIATE_TEST_SUITE_P(TdpSweep, HeatsinkScalingTest,
                         ::testing::Values(2.0, 5.0, 10.0, 15.0,
                                           30.0));

} // namespace
