/**
 * @file
 * Ablation: redundancy depth (None / DMR / TMR).
 *
 * Extends the paper's Fig. 14 (dual redundancy) to triple modular
 * redundancy — the paper cites TMR [58] but does not evaluate it —
 * quantifying the velocity-vs-reliability trade at each depth.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hh"
#include "components/catalog.hh"
#include "core/uav_config.hh"
#include "support/strings.hh"
#include "support/table.hh"

namespace {

using namespace uavf1;

core::UavConfig
buildWithScheme(pipeline::RedundancyScheme scheme)
{
    const auto catalog = components::Catalog::standard();
    const auto algorithms = workload::standardAlgorithms();
    physics::AccelerationOptions accel;
    accel.law = physics::AccelerationLaw::VerticalExcess;
    return core::UavConfig::Builder(
               std::string("Pelican ") + pipeline::toString(scheme))
        .airframe(catalog.airframes().byName("AscTec Pelican"))
        .sensor(catalog.sensors().byName("RGB-D 60FPS (4.5m)"))
        .compute(catalog.computes().byName("Nvidia TX2"))
        .algorithm(algorithms.byName("DroNet"))
        .redundancy(pipeline::ModularRedundancy(scheme))
        .accelerationOptions(accel)
        .thrustDerate(0.833)
        .build();
}

void
printAblation()
{
    bench::banner("Ablation", "Redundancy depth on AscTec Pelican "
                              "+ TX2 + DroNet (extends Fig. 14)");

    const auto baseline = buildWithScheme(
        pipeline::RedundancyScheme::None);
    const double base_v =
        baseline.f1Model().analyze().safeVelocity.value();

    TextTable table({"Scheme", "Replicas", "Compute mass (g)",
                     "Power (W)", "f_compute (Hz)",
                     "v_safe (m/s)", "Loss vs 1x"});
    for (const auto scheme : {pipeline::RedundancyScheme::None,
                              pipeline::RedundancyScheme::Dual,
                              pipeline::RedundancyScheme::Triple}) {
        const auto config = buildWithScheme(scheme);
        const auto analysis = config.f1Model().analyze();
        const double v = analysis.safeVelocity.value();
        table.addRow(
            {pipeline::toString(scheme),
             trimmedNumber(config.redundancy().replicas()),
             trimmedNumber(
                 config.redundancy()
                     .payloadMass(*config.compute(),
                                  config.heatsinkModel())
                     .value(),
                 1),
             trimmedNumber(config.computePower().value(), 1),
             trimmedNumber(config.computeRate().value(), 1),
             trimmedNumber(v, 2),
             strFormat("%.1f%%", 100.0 * (1.0 - v / base_v))});
    }
    std::printf("%s\n", table.render().c_str());
    bench::note("DMR loses ~33% (the paper's Fig. 14); TMR's "
                "majority voting costs a further chunk of the "
                "roof. The paper's suggested remedy holds at every "
                "depth: replicas with ~1/5 the throughput of the "
                "over-provisioned TX2 would fit the same power and "
                "weight envelope");
}

void
BM_RedundancySweep(benchmark::State &state)
{
    for (auto _ : state) {
        for (const auto scheme :
             {pipeline::RedundancyScheme::None,
              pipeline::RedundancyScheme::Dual,
              pipeline::RedundancyScheme::Triple}) {
            benchmark::DoNotOptimize(
                buildWithScheme(scheme).f1Model().analyze());
        }
    }
}
BENCHMARK(BM_RedundancySweep);

} // namespace

int
main(int argc, char **argv)
{
    printAblation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
