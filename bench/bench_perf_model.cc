/**
 * @file
 * Cross-cutting performance micro-benchmarks: every hot path in
 * the library under google-benchmark (model evaluation, curve
 * sampling, config building, simulator stepping, DSE sweeps, and
 * renderers).
 */

#include <benchmark/benchmark.h>

#include "components/catalog.hh"
#include "core/uav_config.hh"
#include "plot/ascii_renderer.hh"
#include "plot/roofline_chart.hh"
#include "plot/svg_writer.hh"
#include "sim/table1.hh"
#include "skyline/dse.hh"
#include "skyline/session.hh"
#include "studies/presets.hh"

namespace {

using namespace uavf1;

void
BM_F1Analyze(benchmark::State &state)
{
    const core::F1Model model(
        studies::pelicanInputs(units::Hertz(178.0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(model.analyze());
}
BENCHMARK(BM_F1Analyze);

void
BM_F1Curve(benchmark::State &state)
{
    const core::F1Model model(
        studies::pelicanInputs(units::Hertz(178.0)));
    const auto samples = static_cast<std::size_t>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(model.curve(samples));
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_F1Curve)->Range(16, 1024)->Complexity();

void
BM_CatalogConstruction(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(components::Catalog::standard());
}
BENCHMARK(BM_CatalogConstruction);

void
BM_UavConfigBuild(benchmark::State &state)
{
    const auto catalog = components::Catalog::standard();
    const auto algorithms = workload::standardAlgorithms();
    for (auto _ : state) {
        core::UavConfig::Builder builder("bench");
        benchmark::DoNotOptimize(
            builder
                .airframe(
                    catalog.airframes().byName("AscTec Pelican"))
                .sensor(
                    catalog.sensors().byName("RGB-D 60FPS (4.5m)"))
                .compute(catalog.computes().byName("Nvidia TX2"))
                .algorithm(algorithms.byName("DroNet"))
                .build());
    }
}
BENCHMARK(BM_UavConfigBuild);

void
BM_SimTrialSweep(benchmark::State &state)
{
    const auto cases = sim::table1ValidationCases();
    const sim::VehicleModel vehicle(cases[0].vehicle);
    const sim::FlightSimulator simulator(vehicle);
    sim::StopScenario scenario = cases[0].scenario;
    scenario.commandedVelocity =
        units::MetersPerSecond(0.001 * state.range(0));
    Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            simulator.run(scenario, cases[0].noise, rng));
    }
}
BENCHMARK(BM_SimTrialSweep)
    ->Arg(1500)
    ->Arg(2500)
    ->Unit(benchmark::kMillisecond);

void
BM_DseSweep(benchmark::State &state)
{
    const auto catalog = components::Catalog::standard();
    const auto algorithms = workload::standardAlgorithms();
    core::UavConfig::Builder prototype("dse");
    prototype.airframe(catalog.airframes().byName("AscTec Pelican"))
        .sensor(catalog.sensors().byName("RGB-D 60FPS (4.5m)"));
    const skyline::DesignSpaceExplorer dse(prototype);
    std::vector<components::ComputePlatform> computes;
    for (const auto &platform : catalog.computes().items()) {
        if (platform.role() ==
            components::ComputeRole::GeneralPurpose) {
            computes.push_back(platform);
        }
    }
    std::vector<workload::AutonomyAlgorithm> algos;
    for (const auto &algorithm : algorithms.items())
        algos.push_back(algorithm);
    for (auto _ : state) {
        auto points = dse.sweep(computes, algos);
        benchmark::DoNotOptimize(
            skyline::DesignSpaceExplorer::paretoFront(points));
    }
}
BENCHMARK(BM_DseSweep)->Unit(benchmark::kMillisecond);

void
BM_SvgRender(benchmark::State &state)
{
    const core::F1Model model(
        studies::pelicanInputs(units::Hertz(178.0)));
    for (auto _ : state) {
        plot::Chart chart = plot::makeRooflineChart(
            "bench", {{"pelican", model.curve(), true, true}});
        benchmark::DoNotOptimize(plot::SvgWriter().render(chart));
    }
}
BENCHMARK(BM_SvgRender);

void
BM_AsciiRender(benchmark::State &state)
{
    const core::F1Model model(
        studies::pelicanInputs(units::Hertz(178.0)));
    for (auto _ : state) {
        plot::Chart chart = plot::makeRooflineChart(
            "bench", {{"pelican", model.curve(), true, true}});
        benchmark::DoNotOptimize(
            plot::AsciiRenderer().render(chart));
    }
}
BENCHMARK(BM_AsciiRender);

void
BM_SkylineRoundTrip(benchmark::State &state)
{
    for (auto _ : state) {
        skyline::SkylineSession session;
        session.set("compute_tdp", "15");
        session.set("sensor_range", "6");
        benchmark::DoNotOptimize(session.analyze());
    }
}
BENCHMARK(BM_SkylineRoundTrip);

} // namespace

BENCHMARK_MAIN();
