/**
 * @file
 * Table I bench: specifications of the four custom validation UAVs,
 * with the derived quantities (takeoff mass, T/W, a_max, predicted
 * safe velocity) our reproduction adds.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hh"
#include "sim/table1.hh"
#include "sim/validation.hh"
#include "support/strings.hh"
#include "support/table.hh"

namespace {

using namespace uavf1;
using namespace uavf1::sim;

void
printTable()
{
    bench::banner("Table I", "Specification of the four custom "
                             "validation UAVs");

    TextTable table({"Component", "UAV-A", "UAV-B", "UAV-C",
                     "UAV-D"});
    table.addRow({"Flight Controller", "NXP FMUk66", "NXP FMUk66",
                  "NXP FMUk66", "NXP FMUk66"});
    table.addRow({"Base Weight (g)", "1030", "1030", "1030",
                  "1030"});
    table.addRow({"Battery", "3S 5000 mAh", "3S 5000 mAh",
                  "3S 5000 mAh", "3S 5000 mAh"});
    table.addRow({"Autonomy Algorithm", "MAVROS custom",
                  "MAVROS custom", "MAVROS custom",
                  "MAVROS custom"});
    table.addRow({"Onboard Compute", "Ras-Pi4", "UpBoard",
                  "Ras-Pi4", "Ras-Pi4"});
    table.addRow({"Motor Propulsion", "RtS 2212 920KV",
                  "RtS 2212 920KV", "RtS 2212 920KV",
                  "RtS 2212 920KV"});
    table.addRow({"Motor Pull, Table I (g)", "~435", "~435", "~435",
                  "~435"});
    table.addRow({"Payload Weight (g)", "590", "800", "640",
                  "690"});
    std::printf("%s\n", table.render().c_str());

    // Derived rows from our model.
    const auto cases = table1ValidationCases();
    TextTable derived({"Derived quantity", "UAV-A", "UAV-B", "UAV-C",
                       "UAV-D"});
    std::vector<std::string> mass_row = {"Takeoff mass (g)"};
    std::vector<std::string> amax_row = {"a_max (m/s^2)"};
    std::vector<std::string> pred_row = {"Predicted v_safe (m/s)"};
    for (const auto &vcase : cases) {
        const VehicleModel vehicle(vcase.vehicle);
        mass_row.push_back(
            trimmedNumber(vcase.vehicle.mass.value() * 1000.0));
        amax_row.push_back(trimmedNumber(
            vehicle.availableAcceleration().value(), 3));
        pred_row.push_back(trimmedNumber(
            ValidationHarness::predictedSafeVelocity(vcase), 2));
    }
    derived.addRow(mass_row);
    derived.addRow(amax_row);
    derived.addRow(pred_row);
    std::printf("%s\n", derived.render().c_str());

    bench::note("usable thrust calibrated to 1870 g-f (4 x 850 g "
                "bench max x 55% sustained); Table I's 4 x 435 g "
                "cannot hover UAV-B's 1830 g takeoff mass");
    bench::paperVsOurs(
        "UAV-A predicted v_safe", 2.13,
        ValidationHarness::predictedSafeVelocity(cases[0]), "m/s");
    bench::paperVsOurs(
        "UAV-B predicted v_safe", 1.51,
        ValidationHarness::predictedSafeVelocity(cases[1]), "m/s");
    bench::paperVsOurs(
        "UAV-C predicted v_safe", 1.58,
        ValidationHarness::predictedSafeVelocity(cases[2]), "m/s");
    bench::paperVsOurs(
        "UAV-D predicted v_safe", 1.53,
        ValidationHarness::predictedSafeVelocity(cases[3]), "m/s");
}

void
BM_Table1Presets(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(table1ValidationCases());
}
BENCHMARK(BM_Table1Presets);

void
BM_PredictedSafeVelocity(benchmark::State &state)
{
    const auto cases = table1ValidationCases();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            ValidationHarness::predictedSafeVelocity(cases[0]));
    }
}
BENCHMARK(BM_PredictedSafeVelocity);

} // namespace

int
main(int argc, char **argv)
{
    printTable();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
