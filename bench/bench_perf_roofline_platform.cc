/**
 * @file
 * Platform-layer perf bench: ceiling-set evaluation throughput.
 *
 * Prints the adapter-consistency check (the single-ceiling family
 * must reproduce the flat min(peak, AI x BW) bound bit-for-bit),
 * measures attainable() evaluations per second on the single- and
 * multi-ceiling families, and writes a BENCH_roofline_platform.json
 * baseline into the artifacts directory so later PRs can track the
 * perf trajectory alongside BENCH_sweep_engine.json.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <vector>

#include "bench_common.hh"
#include "components/catalog.hh"
#include "platform/roofline_platform.hh"
#include "workload/algorithm.hh"
#include "workload/throughput.hh"

namespace {

using namespace uavf1;

/** Log-spaced arithmetic intensities across eight decades. */
std::vector<double>
intensities(std::size_t count)
{
    std::vector<double> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const double frac =
            static_cast<double>(i) / static_cast<double>(count - 1);
        out.push_back(std::pow(10.0, -4.0 + 8.0 * frac));
    }
    return out;
}

double
millisSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Time `evals` attainable() calls on a family; returns ms. */
double
timeAttainable(const platform::RooflinePlatform &machine,
               const std::vector<double> &ai, std::size_t evals)
{
    double sink = 0.0;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < evals; ++i) {
        sink += machine
                    .attainable(units::OpsPerByte(
                        ai[i % ai.size()]))
                    .attainable.value();
    }
    benchmark::DoNotOptimize(sink);
    return millisSince(start);
}

void
printFigure()
{
    bench::banner("Roofline platform",
                  "Ceiling-set evaluation throughput");

    const auto catalog = components::Catalog::standard();
    const platform::RooflinePlatform &tx2_family =
        catalog.rooflines().byName("Nvidia TX2");
    const components::ComputePlatform &tx2_flat =
        catalog.computes().byName("Nvidia TX2");
    const auto ai = intensities(512);

    // Adapter consistency: the single-ceiling family of the flat
    // TX2 entry must reproduce min(peak, AI x BW) bit-for-bit.
    bool identical = true;
    const double peak = tx2_flat.peakThroughput().value();
    const double bw = tx2_flat.memoryBandwidth().value();
    for (const double intensity : ai) {
        const double flat =
            std::min(peak, intensity * bw);
        const double family =
            tx2_flat.roofline()
                .attainable(units::OpsPerByte(intensity))
                .attainable.value();
        identical = identical && flat == family;
    }
    std::printf("  adapter vs flat bound bit-identical over %zu "
                "intensities: %s\n",
                ai.size(), identical ? "yes" : "NO (BUG)");

    // Workload-profile consistency: the default (unannotated)
    // profile must reproduce the flat-AI evaluation bit-for-bit on
    // the multi-ceiling family — annotations are strictly opt-in.
    bool profile_identical = true;
    for (const double intensity : ai) {
        platform::WorkloadProfile profile;
        profile.ai = units::OpsPerByte(intensity);
        const double via_ai =
            tx2_family.attainable(units::OpsPerByte(intensity))
                .attainable.value();
        const double via_profile =
            tx2_family.attainable(profile).attainable.value();
        profile_identical =
            profile_identical && via_ai == via_profile;
    }
    std::printf("  default profile vs flat AI bit-identical over "
                "%zu intensities: %s\n",
                ai.size(), profile_identical ? "yes" : "NO (BUG)");

    constexpr std::size_t evals = 2000000;
    // Untimed warm-up (first-touch, branch predictors).
    (void)timeAttainable(tx2_family, ai, evals / 10);

    const double single_ms =
        timeAttainable(tx2_flat.roofline(), ai, evals);
    const double multi_ms = timeAttainable(tx2_family, ai, evals);

    std::printf("  attainable() on the single-ceiling adapter: "
                "%8.1f ms for %zu evals (%.1f ns/eval)\n",
                single_ms, evals, single_ms * 1e6 / evals);
    std::printf("  attainable() on the %zu+%zu-ceiling TX2 family: "
                "%8.1f ms for %zu evals (%.1f ns/eval)\n",
                tx2_family.computeCeilings().size(),
                tx2_family.memoryCeilings().size(), multi_ms, evals,
                multi_ms * 1e6 / evals);
    bench::note("absolute timings depend on the machine; the "
                "consistency column must hold everywhere");

    // Perf-trajectory baseline for later PRs.
    const std::string path =
        bench::artifactsDir() + "/BENCH_roofline_platform.json";
    std::ofstream json(path);
    json << "{\n"
         << "  \"benchmark\": \"roofline_platform\",\n"
         << "  \"evals\": " << evals << ",\n"
         << "  \"single_ceiling_ms\": " << single_ms << ",\n"
         << "  \"multi_ceiling_ms\": " << multi_ms << ",\n"
         << "  \"single_ns_per_eval\": " << single_ms * 1e6 / evals
         << ",\n"
         << "  \"multi_ns_per_eval\": " << multi_ms * 1e6 / evals
         << ",\n"
         << "  \"adapter_bit_identical\": "
         << (identical ? "true" : "false") << ",\n"
         << "  \"profile_bit_identical\": "
         << (profile_identical ? "true" : "false") << "\n"
         << "}\n";
    std::printf("  artifacts: BENCH_roofline_platform.json\n");
}

void
BM_AttainableSingleCeiling(benchmark::State &state)
{
    const auto machine = platform::RooflinePlatform::singleCeiling(
        "bench", units::Gops(1330.0),
        units::GigabytesPerSecond(59.7));
    const auto ai = intensities(512);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(machine.attainable(
            units::OpsPerByte(ai[i++ % ai.size()])));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AttainableSingleCeiling);

void
BM_AttainableMultiCeiling(benchmark::State &state)
{
    const auto catalog = components::Catalog::standard();
    const platform::RooflinePlatform machine =
        catalog.rooflines().byName("Nvidia TX2");
    const auto ai = intensities(512);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(machine.attainable(
            units::OpsPerByte(ai[i++ % ai.size()])));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AttainableMultiCeiling);

void
BM_RooflineBoundOracle(benchmark::State &state)
{
    const auto catalog = components::Catalog::standard();
    const auto algorithms = workload::standardAlgorithms();
    const workload::AutonomyAlgorithm dronet =
        algorithms.byName("DroNet");
    const platform::RooflinePlatform machine =
        catalog.rooflines().byName("Nvidia TX2");
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            workload::rooflineBound(dronet, machine));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RooflineBoundOracle);

} // namespace

int
main(int argc, char **argv)
{
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
