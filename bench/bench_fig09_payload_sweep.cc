/**
 * @file
 * Fig. 9 bench: the non-linear safe-velocity vs payload-weight
 * relationship, with the four Table-I builds mapped onto the curve.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hh"
#include "plot/chart.hh"
#include "plot/csv_writer.hh"
#include "plot/svg_writer.hh"
#include "studies/fig09_payload.hh"
#include "support/strings.hh"
#include "support/table.hh"

namespace {

using namespace uavf1;
using namespace uavf1::studies;

void
printFigure()
{
    bench::banner("Fig. 9", "Safe velocity vs payload weight "
                            "(S500 validation build)");

    const Fig09Result result = runFig09();

    std::printf("  %-14s %-14s %-12s\n", "payload (g)",
                "a_max (m/s^2)", "v_safe (m/s)");
    for (std::size_t i = 0; i < result.sweep.size();
         i += result.sweep.size() / 14) {
        const auto &p = result.sweep[i];
        std::printf("  %-14.0f %-14.3f %-12.3f\n", p.payloadGrams,
                    p.aMax, p.vSafe);
    }

    std::printf("\n");
    TextTable table({"UAV", "Payload (g)", "v_safe (m/s)"});
    for (const auto &marker : result.markers) {
        table.addRow({marker.name,
                      trimmedNumber(marker.payloadGrams),
                      trimmedNumber(marker.vSafe, 2)});
    }
    std::printf("%s\n", table.render().c_str());

    bench::paperVsOurs("A -> C velocity drop (+50 g)", 26.0,
                       result.dropAtoC, "%");
    bench::paperVsOurs("C -> D velocity drop (+50 g)", 3.0,
                       result.dropCtoD, "%");
    bench::paperVsOurs("A -> B velocity drop (+210 g)", 29.0,
                       result.dropAtoB, "%");
    bench::note("paper quotes ~35% / <3% / ~41% in prose but its "
                "marker values (2.13/1.58/1.53/1.51) imply "
                "26/3/29%; the reproduced claim is the "
                "non-proportionality of equal 50 g increments, "
                "which holds");

    plot::Series curve("v_safe (10 Hz loop, d = 3 m)");
    for (const auto &p : result.sweep)
        curve.add(p.payloadGrams, p.vSafe);
    plot::Series markers("Table I builds",
                         plot::SeriesStyle::Markers);
    plot::Chart chart("Fig. 9: velocity vs payload weight",
                      plot::Axis("Payload Weight (g)"),
                      plot::Axis("Velocity (m/s)"));
    for (const auto &m : result.markers) {
        markers.add(m.payloadGrams, m.vSafe);
        chart.annotate(m.payloadGrams, m.vSafe, m.name);
    }
    chart.add(curve).add(markers);
    plot::SvgWriter().writeFile(
        chart, bench::artifactsDir() + "/fig09_payload_sweep.svg");
    plot::CsvWriter::writeFile(
        {curve}, bench::artifactsDir() + "/fig09_payload_sweep.csv",
        "payload_g", "v_safe_mps");
    std::printf("  artifacts: fig09_payload_sweep.svg/.csv\n");
}

void
BM_Fig09Study(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(runFig09());
}
BENCHMARK(BM_Fig09Study);

void
BM_PayloadPointEval(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(runFig09(8));
}
BENCHMARK(BM_PayloadPointEval);

} // namespace

int
main(int argc, char **argv)
{
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
