/**
 * @file
 * SIMD kernel perf bench and CI perf-gate artifact.
 *
 * Times the three vectorized kernel layers — the core F-1 block
 * kernel (core::analyzeBlock), the per-ceiling roofline evaluator
 * (platform::EvaluationPlan::evaluateBlock) and the per-stage SPA
 * pipeline evaluator (workload::StagePipelinePlan::evaluateBlock) —
 * under native SIMD dispatch vs the forced-scalar W=1 path
 * (simd::setMode), verifies the two modes are bit-identical first,
 * and writes BENCH_simd_kernels.json into the artifacts directory.
 * CI compares the native timings against the committed baseline in
 * bench/baselines/ via tools/check_perf.py and fails on >25%
 * ns/eval regression or any vector-vs-scalar mismatch; the scalar
 * reference timings and the speedups are recorded but not gated.
 */

#include <benchmark/benchmark.h>

#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "components/catalog.hh"
#include "core/f1_batch.hh"
#include "platform/evaluation_plan.hh"
#include "simd/simd.hh"
#include "support/rng.hh"
#include "workload/batch_eval.hh"
#include "workload/spa_pipeline.hh"

namespace {

using namespace uavf1;

constexpr std::size_t kBlock = 64;

double
millisSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

bool
bitEq(double a, double b)
{
    return std::bit_cast<std::uint64_t>(a) ==
           std::bit_cast<std::uint64_t>(b);
}

/** Restore the dispatch mode on scope exit. */
struct ModeGuard
{
    simd::Mode saved = simd::activeMode();
    ~ModeGuard() { simd::setMode(saved); }
};

// ---------------------------------------------------------- F-1 block

struct F1Data
{
    double aMax[kBlock], range[kBlock], sensor[kBlock],
        compute[kBlock];
    double vSafe[kBlock], knee[kBlock], roof[kBlock];
    std::uint8_t bound[kBlock];

    F1Data()
    {
        Rng rng(31);
        for (std::size_t i = 0; i < kBlock; ++i) {
            aMax[i] = rng.uniform(1.0, 30.0);
            range[i] = rng.uniform(5.0, 200.0);
            sensor[i] = rng.uniform(1.0, 120.0);
            compute[i] = rng.uniform(1.0, 120.0);
        }
    }

    void run()
    {
        benchmark::DoNotOptimize(core::analyzeBlock(
            aMax, range, sensor, compute, 1000.0, 0.5, kBlock,
            vSafe, knee, roof, bound));
    }
};

// ------------------------------------------------------ roofline plan

struct PlanData
{
    platform::RooflinePlatform machine;
    platform::EvaluationPlan plan;
    double ai[kBlock];
    double attainable[kBlock];
    std::uint32_t slot[kBlock];

    PlanData()
        : machine(components::Catalog::standard().rooflines().byName(
              "Nvidia TX2")),
          plan(machine,
               platform::WorkloadProfile{
                   .ai = units::OpsPerByte(1.0)})
    {
        Rng rng(37);
        for (std::size_t i = 0; i < kBlock; ++i)
            ai[i] = rng.uniform(0.01, 80.0);
    }

    // No DoNotOptimize on the outputs: the kernel is an opaque
    // library call writing through pointers, so it cannot be
    // eliminated — and DoNotOptimize on an lvalue ("+m,r") is
    // allowed to clobber it, which would break the bit-identity
    // check below.
    void run() { plan.evaluateBlock(0, ai, kBlock, attainable, slot); }
};

// ------------------------------------------------------ SPA pipeline

struct PipelineData
{
    platform::RooflinePlatform machine;
    workload::StagePipelinePlan plan;
    workload::StagePipelinePlan::Scratch scratch;
    double aiScale[kBlock];
    double throughput[kBlock];
    std::uint32_t slot[kBlock];
    std::vector<std::uint64_t> kindCounts;

    // The Navion preset with annotation-scale extremes in the block:
    // the measured row is invalid there and the extremes defeat the
    // whole-block fast path, so the per-stage vector loops — the
    // Monte-Carlo hot path — run for real.
    PipelineData()
        : machine(components::Catalog::standard().rooflines().byName(
              "TX2-CPU + Navion")),
          plan(workload::SpaPipeline::mavbenchPackageDeliveryTx2(),
               machine),
          kindCounts(plan.stageCount() * 3, 0)
    {
        Rng rng(41);
        for (std::size_t i = 0; i < kBlock; ++i)
            aiScale[i] = rng.uniform(0.5, 2.0);
        aiScale[kBlock - 1] = 1e-9;
        aiScale[kBlock - 2] = 1e9;
    }

    void run()
    {
        plan.evaluateBlock(0, true, aiScale, kBlock, throughput,
                           slot, kindCounts.data(), scratch);
    }
};

/** Time `reps` kernel calls in the given mode, ns per sample. */
template <typename Data>
double
timeMode(Data &data, simd::Mode mode, std::size_t reps)
{
    simd::setMode(mode);
    data.run(); // Warm-up (and touches every page).
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < reps; ++r)
        data.run();
    return millisSince(start) * 1e6 /
           (static_cast<double>(reps) * kBlock);
}

/** Vector-vs-scalar bit-identity of all three layers. */
bool
checkBitIdentity()
{
    bool f1_ok = true;
    F1Data f1_scalar, f1_native;
    simd::setMode(simd::Mode::Scalar);
    f1_scalar.run();
    simd::setMode(simd::Mode::Native);
    f1_native.run();
    for (std::size_t i = 0; i < kBlock; ++i) {
        f1_ok = f1_ok &&
                bitEq(f1_scalar.vSafe[i], f1_native.vSafe[i]) &&
                bitEq(f1_scalar.knee[i], f1_native.knee[i]) &&
                bitEq(f1_scalar.roof[i], f1_native.roof[i]) &&
                f1_scalar.bound[i] == f1_native.bound[i];
    }

    bool plan_ok = true;
    PlanData plan_scalar, plan_native;
    simd::setMode(simd::Mode::Scalar);
    plan_scalar.run();
    simd::setMode(simd::Mode::Native);
    plan_native.run();
    for (std::size_t i = 0; i < kBlock; ++i) {
        plan_ok = plan_ok &&
                  bitEq(plan_scalar.attainable[i],
                        plan_native.attainable[i]) &&
                  plan_scalar.slot[i] == plan_native.slot[i];
    }

    bool pipe_ok = true;
    PipelineData pipe_scalar, pipe_native;
    simd::setMode(simd::Mode::Scalar);
    pipe_scalar.run();
    simd::setMode(simd::Mode::Native);
    pipe_native.run();
    for (std::size_t i = 0; i < kBlock; ++i) {
        pipe_ok = pipe_ok &&
                  bitEq(pipe_scalar.throughput[i],
                        pipe_native.throughput[i]) &&
                  pipe_scalar.slot[i] == pipe_native.slot[i];
    }
    pipe_ok =
        pipe_ok && pipe_scalar.kindCounts == pipe_native.kindCounts;

    if (!f1_ok || !plan_ok || !pipe_ok) {
        std::printf("  MISMATCH in:%s%s%s\n",
                    f1_ok ? "" : " core::analyzeBlock",
                    plan_ok ? "" : " EvaluationPlan",
                    pipe_ok ? "" : " StagePipelinePlan");
    }
    return f1_ok && plan_ok && pipe_ok;
}

void
printFigure()
{
    ModeGuard guard;
    bench::banner("SIMD kernels",
                  "Vectorized block kernels vs the forced-scalar "
                  "W=1 path");

    std::printf("  backend: %s (native width %zu)\n",
                simd::backendName(), simd::nativeWidth);

    const bool bit_identical = checkBitIdentity();
    std::printf("  native vs scalar bit-identical: %s\n",
                bit_identical ? "yes" : "NO (BUG)");

    F1Data f1;
    constexpr std::size_t f1_reps = 40000;
    const double f1_native = timeMode(f1, simd::Mode::Native,
                                      f1_reps);
    const double f1_scalar = timeMode(f1, simd::Mode::Scalar,
                                      f1_reps);
    std::printf("  core::analyzeBlock:        native %6.2f "
                "ns/eval, scalar %6.2f ns/eval (%.2fx)\n",
                f1_native, f1_scalar, f1_scalar / f1_native);

    PlanData plan;
    constexpr std::size_t plan_reps = 40000;
    const double plan_native = timeMode(plan, simd::Mode::Native,
                                        plan_reps);
    const double plan_scalar = timeMode(plan, simd::Mode::Scalar,
                                        plan_reps);
    std::printf("  EvaluationPlan block:      native %6.2f "
                "ns/eval, scalar %6.2f ns/eval (%.2fx)\n",
                plan_native, plan_scalar, plan_scalar / plan_native);

    PipelineData pipe;
    constexpr std::size_t pipe_reps = 10000;
    const double pipe_native = timeMode(pipe, simd::Mode::Native,
                                        pipe_reps);
    const double pipe_scalar = timeMode(pipe, simd::Mode::Scalar,
                                        pipe_reps);
    std::printf("  StagePipelinePlan block:   native %6.2f "
                "ns/eval, scalar %6.2f ns/eval (%.2fx)\n",
                pipe_native, pipe_scalar, pipe_scalar / pipe_native);

    bench::note("absolute timings depend on the machine; CI gates "
                "the native timings on the committed baseline with "
                "25% headroom");

    const std::string path =
        bench::artifactsDir() + "/BENCH_simd_kernels.json";
    std::ofstream json(path);
    json << "{\n"
         << "  \"benchmark\": \"simd_kernels\",\n"
         << "  \"simd_backend\": \"" << simd::backendName()
         << "\",\n"
         << "  \"native_width\": " << simd::nativeWidth << ",\n"
         << "  \"f1_block_batch_ns_per_eval\": " << f1_native
         << ",\n"
         << "  \"f1_block_reference_ns_per_eval\": " << f1_scalar
         << ",\n"
         << "  \"f1_block_speedup\": " << f1_scalar / f1_native
         << ",\n"
         << "  \"plan_block_batch_ns_per_eval\": " << plan_native
         << ",\n"
         << "  \"plan_block_reference_ns_per_eval\": " << plan_scalar
         << ",\n"
         << "  \"plan_block_speedup\": " << plan_scalar / plan_native
         << ",\n"
         << "  \"pipeline_block_batch_ns_per_eval\": " << pipe_native
         << ",\n"
         << "  \"pipeline_block_reference_ns_per_eval\": "
         << pipe_scalar << ",\n"
         << "  \"pipeline_block_speedup\": "
         << pipe_scalar / pipe_native << ",\n"
         << "  \"bit_identical\": "
         << (bit_identical ? "true" : "false") << "\n"
         << "}\n";
    std::printf("  artifacts: BENCH_simd_kernels.json\n");
}

void
BM_AnalyzeBlockNative(benchmark::State &state)
{
    ModeGuard guard;
    simd::setMode(simd::Mode::Native);
    F1Data data;
    for (auto _ : state)
        data.run();
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kBlock);
}
BENCHMARK(BM_AnalyzeBlockNative);

void
BM_AnalyzeBlockScalar(benchmark::State &state)
{
    ModeGuard guard;
    simd::setMode(simd::Mode::Scalar);
    F1Data data;
    for (auto _ : state)
        data.run();
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kBlock);
}
BENCHMARK(BM_AnalyzeBlockScalar);

void
BM_StagePipelineBlockNative(benchmark::State &state)
{
    ModeGuard guard;
    simd::setMode(simd::Mode::Native);
    PipelineData data;
    for (auto _ : state)
        data.run();
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kBlock);
}
BENCHMARK(BM_StagePipelineBlockNative);

void
BM_StagePipelineBlockScalar(benchmark::State &state)
{
    ModeGuard guard;
    simd::setMode(simd::Mode::Scalar);
    PipelineData data;
    for (auto _ : state)
        data.run();
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kBlock);
}
BENCHMARK(BM_StagePipelineBlockScalar);

} // namespace

int
main(int argc, char **argv)
{
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
