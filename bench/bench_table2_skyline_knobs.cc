/**
 * @file
 * Table II bench: exercise all eight Skyline knobs end-to-end and
 * show each knob's marginal effect on the analysis.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hh"
#include "skyline/report.hh"
#include "skyline/session.hh"
#include "support/strings.hh"
#include "support/table.hh"

namespace {

using namespace uavf1;
using namespace uavf1::skyline;

void
printTable()
{
    bench::banner("Table II", "Skyline knob set and per-knob "
                              "sensitivity");

    SkylineSession session;
    std::printf("%s\n",
                ReportWriter::text(session, "Skyline baseline")
                    .c_str());

    // Marginal sensitivity: change each knob by a meaningful step
    // from the baseline and report the resulting v_safe.
    const double base_v =
        session.analyze().f1.safeVelocity.value();
    const struct
    {
        const char *knob;
        const char *value;
    } deltas[] = {
        {"sensor_framerate", "30"},
        {"compute_tdp", "30"},
        {"compute_runtime", "0.05"},
        {"sensor_range", "9"},
        {"drone_weight", "1400"},
        {"rotor_pull", "2200"},
        {"payload_weight", "450"},
        {"control_rate", "100"},
    };

    TextTable table({"Knob changed", "New value",
                     "v_safe (m/s)", "delta vs baseline"});
    for (const auto &delta : deltas) {
        SkylineSession variant = session;
        variant.set(delta.knob, delta.value);
        const double v =
            variant.analyze().f1.safeVelocity.value();
        table.addRow({delta.knob, delta.value, trimmedNumber(v, 3),
                      strFormat("%+.1f%%",
                                100.0 * (v - base_v) / base_v)});
    }
    std::printf("baseline v_safe: %.3f m/s\n%s\n", base_v,
                table.render().c_str());

    ReportWriter::writeHtml(
        session, "Skyline report (Table II baseline)",
        bench::artifactsDir() + "/table2_skyline_report.html");
    std::printf("  artifacts: table2_skyline_report.html\n");
}

void
BM_SessionAnalyze(benchmark::State &state)
{
    SkylineSession session;
    for (auto _ : state)
        benchmark::DoNotOptimize(session.analyze());
}
BENCHMARK(BM_SessionAnalyze);

void
BM_HtmlReport(benchmark::State &state)
{
    SkylineSession session;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            ReportWriter::html(session, "bench"));
    }
}
BENCHMARK(BM_HtmlReport);

} // namespace

int
main(int argc, char **argv)
{
    printTable();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
