/**
 * @file
 * Sweep-engine perf bench: serial vs parallel Monte-Carlo
 * uncertainty analysis and design-space sweeps.
 *
 * Prints the determinism check (1M samples must be bit-identical at
 * 1, 2 and 8 threads), reports the measured wall-clock speedup, and
 * writes a BENCH_sweep_engine.json baseline into the artifacts
 * directory so later PRs can track the perf trajectory.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>

#include "bench_common.hh"
#include "components/catalog.hh"
#include "exec/parallel.hh"
#include "exec/thread_pool.hh"
#include "sim/monte_carlo.hh"
#include "skyline/dse.hh"
#include "studies/presets.hh"
#include "workload/algorithm.hh"

namespace {

using namespace uavf1;

/** The Monte-Carlo workload all measurements share. */
sim::MonteCarloAnalyzer
analyzer()
{
    sim::UncertaintySpec spec;
    spec.nominal = studies::pelicanInputs(units::Hertz(55.0));
    return sim::MonteCarloAnalyzer(spec);
}

/** The DSE workload: full catalog x algorithm grid. */
struct DseWorkload
{
    skyline::DesignSpaceExplorer dse;
    std::vector<components::ComputePlatform> computes;
    std::vector<workload::AutonomyAlgorithm> algorithms;

    static DseWorkload standard()
    {
        const auto catalog = components::Catalog::standard();
        core::UavConfig::Builder builder("sweep-bench");
        builder
            .airframe(catalog.airframes().byName("AscTec Pelican"))
            .sensor(catalog.sensors().byName("RGB-D 60FPS (4.5m)"));
        DseWorkload workload{
            skyline::DesignSpaceExplorer(builder), {}, {}};
        workload.computes = catalog.computes().items();
        const auto algos = workload::standardAlgorithms();
        workload.algorithms = algos.items();
        return workload;
    }
};

double
millisSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

void
printFigure()
{
    bench::banner("Sweep engine",
                  "Parallel Monte-Carlo and DSE sweeps");

    const auto mc = analyzer();
    constexpr std::size_t samples = 1000000;

    exec::ThreadPool pool1(1);
    exec::ThreadPool pool2(2);
    exec::ThreadPool pool8(8);

    // Untimed warm-up so the serial measurement doesn't also pay
    // one-time costs (first-touch page faults, allocator growth)
    // that would inflate the speedup recorded in the baseline.
    (void)mc.run(samples, 11, {.pool = &pool1});

    auto start = std::chrono::steady_clock::now();
    const auto r1 = mc.run(samples, 11, {.pool = &pool1});
    const double serial_ms = millisSince(start);

    const auto r2 = mc.run(samples, 11, {.pool = &pool2});

    start = std::chrono::steady_clock::now();
    const auto r8 = mc.run(samples, 11, {.pool = &pool8});
    const double parallel_ms = millisSince(start);

    const bool identical =
        r1.safeVelocity.mean == r2.safeVelocity.mean &&
        r1.safeVelocity.mean == r8.safeVelocity.mean &&
        r1.safeVelocity.p5 == r8.safeVelocity.p5 &&
        r1.safeVelocity.p95 == r8.safeVelocity.p95 &&
        r1.kneeThroughput.p50 == r8.kneeThroughput.p50 &&
        r1.probComputeBound == r8.probComputeBound &&
        r1.probPhysicsBound == r8.probPhysicsBound;

    std::printf("  Monte-Carlo, %zu samples:\n", samples);
    std::printf("    1 thread  %8.1f ms\n", serial_ms);
    std::printf("    8 threads %8.1f ms (%.2fx)\n", parallel_ms,
                serial_ms / parallel_ms);
    std::printf("    bit-identical across 1/2/8 threads: %s\n",
                identical ? "yes" : "NO (BUG)");

    const auto dse = DseWorkload::standard();
    start = std::chrono::steady_clock::now();
    const auto points1 =
        dse.dse.sweep(dse.computes, dse.algorithms, {.pool = &pool1});
    const double dse_serial_ms = millisSince(start);
    start = std::chrono::steady_clock::now();
    const auto points8 =
        dse.dse.sweep(dse.computes, dse.algorithms, {.pool = &pool8});
    const double dse_parallel_ms = millisSince(start);

    bool dse_identical = points1.size() == points8.size();
    for (std::size_t i = 0; dse_identical && i < points1.size();
         ++i) {
        dse_identical =
            points1[i].safeVelocity == points8[i].safeVelocity &&
            points1[i].computePower == points8[i].computePower &&
            points1[i].feasible == points8[i].feasible;
    }
    std::printf("  DSE sweep, %zu designs:\n", points1.size());
    std::printf("    1 thread  %8.2f ms\n", dse_serial_ms);
    std::printf("    8 threads %8.2f ms (%.2fx)\n", dse_parallel_ms,
                dse_serial_ms / dse_parallel_ms);
    std::printf("    identical across 1/8 threads: %s\n",
                dse_identical ? "yes" : "NO (BUG)");
    bench::note("speedups depend on the machine's core count; the "
                "determinism columns must hold everywhere");

    // Perf-trajectory baseline for later PRs.
    const std::string path =
        bench::artifactsDir() + "/BENCH_sweep_engine.json";
    std::ofstream json(path);
    json << "{\n"
         << "  \"benchmark\": \"sweep_engine\",\n"
         << "  \"hardware_threads\": "
         << exec::ThreadPool::defaultThreadCount() << ",\n"
         << "  \"monte_carlo_samples\": " << samples << ",\n"
         << "  \"monte_carlo_serial_ms\": " << serial_ms << ",\n"
         << "  \"monte_carlo_8thread_ms\": " << parallel_ms << ",\n"
         << "  \"monte_carlo_speedup\": "
         << serial_ms / parallel_ms << ",\n"
         << "  \"monte_carlo_deterministic\": "
         << (identical ? "true" : "false") << ",\n"
         << "  \"dse_designs\": " << points1.size() << ",\n"
         << "  \"dse_serial_ms\": " << dse_serial_ms << ",\n"
         << "  \"dse_8thread_ms\": " << dse_parallel_ms << ",\n"
         << "  \"dse_deterministic\": "
         << (dse_identical ? "true" : "false") << "\n"
         << "}\n";
    std::printf("  artifacts: BENCH_sweep_engine.json\n");
}

void
BM_MonteCarloSerial(benchmark::State &state)
{
    const auto mc = analyzer();
    exec::ThreadPool pool(1);
    const auto count = static_cast<std::size_t>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(mc.run(count, 11, {.pool = &pool}));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0));
}
BENCHMARK(BM_MonteCarloSerial)->Arg(100000);

void
BM_MonteCarloParallel(benchmark::State &state)
{
    const auto mc = analyzer();
    const auto count = static_cast<std::size_t>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(mc.run(count, 11));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0));
}
BENCHMARK(BM_MonteCarloParallel)->Arg(100000);

void
BM_DseSweepSerial(benchmark::State &state)
{
    const auto workload = DseWorkload::standard();
    exec::ThreadPool pool(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(workload.dse.sweep(
            workload.computes, workload.algorithms, {.pool = &pool}));
    }
}
BENCHMARK(BM_DseSweepSerial);

void
BM_DseSweepParallel(benchmark::State &state)
{
    const auto workload = DseWorkload::standard();
    for (auto _ : state) {
        benchmark::DoNotOptimize(workload.dse.sweep(
            workload.computes, workload.algorithms));
    }
}
BENCHMARK(BM_DseSweepParallel);

} // namespace

int
main(int argc, char **argv)
{
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
