/**
 * @file
 * Ablation: decomposing the model-vs-flight error.
 *
 * Section IV of the paper lists the F-1 model's error sources:
 * linearization, drag, and payload dynamics (jerk). Our simulator
 * implements drag, actuation lag, stochastic noise and decision-
 * phase discretization; this bench knocks each out in turn on
 * UAV-A and re-measures the validation error, attributing the gap.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hh"
#include "physics/drag.hh"
#include "sim/table1.hh"
#include "sim/validation.hh"
#include "support/strings.hh"
#include "support/table.hh"

namespace {

using namespace uavf1;
using namespace uavf1::sim;

/** Run the validation with a modified case, return the error %. */
double
errorWith(ValidationCase vcase)
{
    vcase.sweepResolution = 0.02; // Finer than the default 0.05.
    return ValidationHarness::validate(vcase).errorPercent;
}

void
printAblation()
{
    bench::banner("Ablation", "Validation error-source "
                              "decomposition (UAV-A)");

    const auto base = table1ValidationCases()[0];

    TextTable table({"Simulator variant", "Error vs model (%)"});

    table.addRow({"full realism (Fig. 7 setting)",
                  trimmedNumber(errorWith(base), 1)});

    ValidationCase no_drag = base;
    no_drag.vehicle.drag = physics::DragModel::none();
    table.addRow(
        {"- drag removed", trimmedNumber(errorWith(no_drag), 1)});

    ValidationCase no_lag = base;
    no_lag.vehicle.actuationLag = units::Seconds(0.0);
    no_lag.vehicle.brakeMargin = 1.0;
    table.addRow({"- actuation lag & brake margin removed",
                  trimmedNumber(errorWith(no_lag), 1)});

    ValidationCase no_noise = base;
    no_noise.noise = NoiseParams::none();
    table.addRow({"- stochastic noise & random phase removed",
                  trimmedNumber(errorWith(no_noise), 1)});

    ValidationCase ideal = base;
    ideal.vehicle.drag = physics::DragModel::none();
    ideal.vehicle.actuationLag = units::Seconds(0.0);
    ideal.vehicle.brakeMargin = 1.0;
    ideal.noise = NoiseParams::none();
    table.addRow({"ideal vehicle (all effects removed)",
                  trimmedNumber(errorWith(ideal), 1)});

    std::printf("%s\n", table.render().c_str());
    bench::note("with every real-world effect removed the residual "
                "error collapses toward the sweep resolution: the "
                "Eq. 4 model is exact for an ideal vehicle, and "
                "the paper's 5-10% gap is fully attributable to "
                "the listed effects (lag dominates, as the paper's "
                "jerk/drag discussion suggests)");
}

void
BM_ValidationRun(benchmark::State &state)
{
    const auto base = table1ValidationCases()[0];
    for (auto _ : state)
        benchmark::DoNotOptimize(
            ValidationHarness::validate(base));
}
BENCHMARK(BM_ValidationRun)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printAblation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
