/**
 * @file
 * Per-stage pipeline evaluation perf bench.
 *
 * Prints the consistency checks the per-stage spine must uphold
 * (on the measured platform at nominal the evaluator reproduces
 * the SpaPipeline's own latency arithmetic bit-for-bit; on the
 * stage-gated accelerator family only the gated stage shortens),
 * measures evaluateInto() throughput on both the measured-first
 * and the fully modeled path, and writes a
 * BENCH_stage_pipeline.json baseline into the artifacts directory
 * so later PRs can track the perf trajectory alongside
 * BENCH_roofline_platform.json.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include "bench_common.hh"
#include "components/catalog.hh"
#include "platform/roofline_platform.hh"
#include "workload/spa_pipeline.hh"
#include "workload/stage_eval.hh"

namespace {

using namespace uavf1;

double
millisSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Time `evals` evaluateInto() calls; returns ms. */
double
timeEvaluate(const workload::StagePipelineEvaluator &evaluator,
             const workload::StageEvalOptions &options,
             std::size_t evals)
{
    workload::PipelineBound bound;
    double sink = 0.0;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < evals; ++i) {
        evaluator.evaluateInto(options, bound);
        sink += bound.totalLatencySeconds;
    }
    benchmark::DoNotOptimize(sink);
    return millisSince(start);
}

void
printFigure()
{
    bench::banner("Stage pipeline",
                  "Per-stage workload-aware evaluation throughput");

    const auto catalog = components::Catalog::standard();
    const workload::SpaPipeline pipeline =
        workload::SpaPipeline::mavbenchPackageDeliveryTx2();
    const workload::StagePipelineEvaluator measured(
        pipeline, catalog.rooflines().byName("Nvidia TX2"));
    const workload::StagePipelineEvaluator modeled(
        pipeline, catalog.rooflines().byName("TX2-CPU + Navion"));

    // Measured-first consistency: at the nominal point on the
    // platform the pipeline was characterized on, the evaluator's
    // totals must reproduce the SpaPipeline's own arithmetic
    // bit-for-bit (the legacy-bytes contract of the refactor).
    const workload::PipelineBound nominal = measured.evaluate();
    const bool identical =
        nominal.totalLatencySeconds ==
            pipeline.totalLatency().value() &&
        nominal.throughputHz == pipeline.throughput().value();
    std::printf("  measured-first total vs SpaPipeline "
                "bit-identical: %s\n",
                identical ? "yes" : "NO (BUG)");

    // Stage gating: the Navion family shortens exactly its gated
    // SLAM stage; every other stage rides its modeled host-CPU
    // bound, within a hair of its measured TX2 latency.
    const workload::PipelineBound accelerated = modeled.evaluate();
    bool gated = accelerated.stages[0].binding.attributed;
    for (std::size_t i = 1; i < accelerated.stageCount; ++i) {
        const double measured_lat =
            pipeline.stages()[i].latency.value();
        gated = gated &&
                std::abs(accelerated.stages[i].latencySeconds -
                         measured_lat) < 1e-3 * measured_lat;
    }
    std::printf("  Navion shortens only its gated stage "
                "(%.2f -> %.2f Hz): %s\n",
                nominal.throughputHz, accelerated.throughputHz,
                gated ? "yes" : "NO (BUG)");

    constexpr std::size_t evals = 1000000;
    const workload::StageEvalOptions options;
    (void)timeEvaluate(measured, options, evals / 10); // Warm-up.

    const double measured_ms = timeEvaluate(measured, options, evals);
    const double modeled_ms = timeEvaluate(modeled, options, evals);

    std::printf("  evaluateInto() measured-first on the TX2:    "
                "%8.1f ms for %zu evals (%.1f ns/eval)\n",
                measured_ms, evals, measured_ms * 1e6 / evals);
    std::printf("  evaluateInto() modeled on TX2-CPU + Navion:  "
                "%8.1f ms for %zu evals (%.1f ns/eval)\n",
                modeled_ms, evals, modeled_ms * 1e6 / evals);
    bench::note("absolute timings depend on the machine; the "
                "consistency column must hold everywhere");

    // Perf-trajectory baseline for later PRs.
    const std::string path =
        bench::artifactsDir() + "/BENCH_stage_pipeline.json";
    std::ofstream json(path);
    json << "{\n"
         << "  \"benchmark\": \"stage_pipeline\",\n"
         << "  \"evals\": " << evals << ",\n"
         << "  \"measured_first_ms\": " << measured_ms << ",\n"
         << "  \"modeled_ms\": " << modeled_ms << ",\n"
         << "  \"measured_first_ns_per_eval\": "
         << measured_ms * 1e6 / evals << ",\n"
         << "  \"modeled_ns_per_eval\": "
         << modeled_ms * 1e6 / evals << ",\n"
         << "  \"measured_first_bit_identical\": "
         << (identical ? "true" : "false") << ",\n"
         << "  \"stage_gating_exact\": "
         << (gated ? "true" : "false") << "\n"
         << "}\n";
    std::printf("  artifacts: BENCH_stage_pipeline.json\n");
}

void
BM_StageEvaluateMeasuredFirst(benchmark::State &state)
{
    const auto catalog = components::Catalog::standard();
    const workload::StagePipelineEvaluator evaluator(
        workload::SpaPipeline::mavbenchPackageDeliveryTx2(),
        catalog.rooflines().byName("Nvidia TX2"));
    const workload::StageEvalOptions options;
    workload::PipelineBound bound;
    for (auto _ : state) {
        evaluator.evaluateInto(options, bound);
        benchmark::DoNotOptimize(bound.totalLatencySeconds);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StageEvaluateMeasuredFirst);

void
BM_StageEvaluateModeled(benchmark::State &state)
{
    const auto catalog = components::Catalog::standard();
    const workload::StagePipelineEvaluator evaluator(
        workload::SpaPipeline::mavbenchPackageDeliveryTx2(),
        catalog.rooflines().byName("TX2-CPU + Navion"));
    workload::StageEvalOptions options;
    options.measuredFirst = false;
    workload::PipelineBound bound;
    for (auto _ : state) {
        evaluator.evaluateInto(options, bound);
        benchmark::DoNotOptimize(bound.totalLatencySeconds);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StageEvaluateModeled);

void
BM_StageEvaluatePerturbedAi(benchmark::State &state)
{
    const auto catalog = components::Catalog::standard();
    const workload::StagePipelineEvaluator evaluator(
        workload::SpaPipeline::mavbenchPackageDeliveryTx2(),
        catalog.rooflines().byName("TX2-CPU + Navion"));
    workload::StageEvalOptions options;
    options.measuredFirst = false;
    workload::PipelineBound bound;
    std::size_t i = 0;
    for (auto _ : state) {
        options.aiScale = 0.5 + 0.001 * static_cast<double>(i++ % 1000);
        evaluator.evaluateInto(options, bound);
        benchmark::DoNotOptimize(bound.totalLatencySeconds);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StageEvaluatePerturbedAi);

} // namespace

int
main(int argc, char **argv)
{
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
