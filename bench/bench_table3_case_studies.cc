/**
 * @file
 * Table III bench: the evaluation case-study overview matrix, with
 * each study's headline result regenerated live.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hh"
#include "studies/fig11_compute.hh"
#include "studies/fig13_algorithms.hh"
#include "studies/fig14_redundancy.hh"
#include "studies/fig15_full_system.hh"
#include "support/strings.hh"
#include "support/table.hh"

namespace {

using namespace uavf1;
using namespace uavf1::studies;

void
printTable()
{
    bench::banner("Table III", "Evaluation case-study overview");

    const Fig11Result fig11 = runFig11();
    const Fig13Result fig13 = runFig13();
    const Fig14Result fig14 = runFig14();
    const Fig15Result fig15 = runFig15();

    TextTable table({"Case study", "Varied parameter", "UAV",
                     "Headline result (regenerated)"});
    table.addRow(
        {"VI-A Onboard compute", "Intel NCS vs Nvidia AGX",
         "DJI Spark",
         strFormat("NCS roof %.1f m/s > AGX-30W %.1f m/s; "
                   "15 W what-if +%.0f%%",
                   fig11.ncs.analysis.roofVelocity.value(),
                   fig11.agx30.analysis.roofVelocity.value(),
                   (fig11.agxTdpGain - 1.0) * 100.0)});
    table.addRow(
        {"VI-B Autonomy algorithms", "SPA vs TrailNet vs DroNet",
         "AscTec Pelican",
         strFormat("knee %.0f Hz; SPA %.1f m/s needs %.0fx; "
                   "TrailNet over by %.2fx",
                   fig13.kneeThroughput,
                   fig13.entries[0].analysis.safeVelocity.value(),
                   fig13.entries[0].factorVsKnee,
                   fig13.entries[1].factorVsKnee)});
    table.addRow(
        {"VI-C Payload redundancy", "1x vs 2x Nvidia TX2",
         "AscTec Pelican",
         strFormat("DMR lowers v_safe by %.0f%%",
                   fig14.velocityLossPercent)});
    table.addRow(
        {"VI-D Full UAV system",
         "{NCS,TX2,Ras-Pi} x {DroNet,TrailNet,VGG16,CAD2RL}",
         "Pelican & Spark",
         strFormat("knees %.0f / %.0f Hz; Spark+TX2 over by "
                   "%.1fx; Ras-Pi needs 3.3/110/660x",
                   fig15.pelicanKnee, fig15.sparkKnee,
                   fig15.find("DJI Spark", "DroNet", "Nvidia TX2")
                           .throughputHz /
                       fig15.sparkKnee)});
    std::printf("%s\n", table.render().c_str());
}

void
BM_AllCaseStudies(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(runFig11());
        benchmark::DoNotOptimize(runFig13());
        benchmark::DoNotOptimize(runFig14());
        benchmark::DoNotOptimize(runFig15());
    }
}
BENCHMARK(BM_AllCaseStudies)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printTable();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
