/**
 * @file
 * Fig. 7 bench: experimental validation of the F-1 model.
 *
 * (a) Simulated flight trajectories for UAV-A at a sweep of
 *     commanded velocities around the predicted safe velocity;
 * (b) model-predicted vs flight-observed safe velocity and the
 *     per-UAV error, next to the paper's reported errors
 *     (9.5 / 7.2 / 5.1 / 6.45 %).
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hh"
#include "plot/chart.hh"
#include "plot/csv_writer.hh"
#include "plot/svg_writer.hh"
#include "sim/table1.hh"
#include "sim/validation.hh"
#include "support/strings.hh"
#include "support/table.hh"

namespace {

using namespace uavf1;
using namespace uavf1::sim;

void
printFigure()
{
    bench::banner("Fig. 7", "Experimental validation (simulated "
                            "flights, Section IV protocol)");

    const auto cases = table1ValidationCases();

    // --- Fig. 7a: UAV-A trajectories around the prediction. ---
    const double seed =
        ValidationHarness::predictedSafeVelocity(cases[0]);
    std::printf("  UAV-A trajectories (obstacle plane at run-up + "
                "3 m; prediction %.2f m/s):\n",
                seed);
    std::vector<plot::Series> trajectory_series;
    for (double scale : {0.7, 0.9, 1.0, 1.1, 1.25}) {
        const double v = seed * scale;
        const TrialResult trial =
            ValidationHarness::recordTrajectory(cases[0], v);
        std::printf(
            "    v_cmd %.2f m/s: stop margin %+.3f m -> %s\n", v,
            trial.stopMargin,
            trial.infraction ? "INFRACTION" : "safe");
        plot::Series series(strFormat("v = %.2f m/s", v));
        for (const auto &sample : trial.trajectory)
            series.add(sample.time, sample.position);
        trajectory_series.push_back(std::move(series));
    }
    plot::Chart chart_a("Fig. 7a: UAV-A flight trajectories",
                        plot::Axis("time (s)"),
                        plot::Axis("position (m)"));
    for (auto &series : trajectory_series)
        chart_a.add(series);
    const double obstacle =
        cases[0].scenario.runUp.value() +
        cases[0].scenario.obstacleDistance.value();
    chart_a.hline(obstacle, "obstacle plane");
    plot::SvgWriter().writeFile(
        chart_a,
        bench::artifactsDir() + "/fig07a_trajectories.svg");
    plot::CsvWriter::writeFile(
        trajectory_series,
        bench::artifactsDir() + "/fig07a_trajectories.csv",
        "time_s", "position_m");

    // --- Fig. 7b: predicted vs observed across all four UAVs. ---
    const auto results = ValidationHarness::validateAll(cases);
    const auto paper_errors = table1PaperErrorPercent();

    std::printf("\n");
    TextTable table({"UAV", "a_avail (m/s^2)", "Predicted (m/s)",
                     "Observed (m/s)", "Error (%)",
                     "Paper error (%)"});
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        table.addRow({r.name, trimmedNumber(r.availableAccel, 3),
                      trimmedNumber(r.predicted, 2),
                      trimmedNumber(r.observed, 2),
                      trimmedNumber(r.errorPercent, 1),
                      trimmedNumber(paper_errors[i], 2)});
    }
    std::printf("%s\n", table.render().c_str());
    bench::note("error = 100 * (predicted - observed) / observed; "
                "positive = model optimistic, as in the paper");

    plot::Series error_series("model error (%)",
                              plot::SeriesStyle::Markers);
    plot::Series paper_series("paper error (%)",
                              plot::SeriesStyle::Markers);
    for (std::size_t i = 0; i < results.size(); ++i) {
        error_series.add(static_cast<double>(i + 1),
                         results[i].errorPercent);
        paper_series.add(static_cast<double>(i + 1),
                         paper_errors[i]);
    }
    plot::Chart chart_b("Fig. 7b: model-vs-flight error",
                        plot::Axis("UAV (1=A .. 4=D)"),
                        plot::Axis("error (%)"));
    chart_b.add(error_series).add(paper_series);
    plot::SvgWriter().writeFile(
        chart_b, bench::artifactsDir() + "/fig07b_errors.svg");
    std::printf("  artifacts: fig07a_trajectories.svg/.csv, "
                "fig07b_errors.svg\n");
}

void
BM_SimulatorTrial(benchmark::State &state)
{
    const auto cases = table1ValidationCases();
    const VehicleModel vehicle(cases[0].vehicle);
    const FlightSimulator simulator(vehicle);
    StopScenario scenario = cases[0].scenario;
    scenario.commandedVelocity = units::MetersPerSecond(2.0);
    Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            simulator.run(scenario, cases[0].noise, rng));
    }
}
BENCHMARK(BM_SimulatorTrial)->Unit(benchmark::kMillisecond);

void
BM_VehicleStep(benchmark::State &state)
{
    const auto cases = table1ValidationCases();
    VehicleModel vehicle(cases[0].vehicle);
    vehicle.reset();
    for (auto _ : state)
        vehicle.step(units::Seconds(0.001), 1.0);
}
BENCHMARK(BM_VehicleStep);

} // namespace

int
main(int argc, char **argv)
{
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
