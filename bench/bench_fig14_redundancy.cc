/**
 * @file
 * Fig. 14 bench: dual-modular-redundant compute on the AscTec
 * Pelican (single TX2 vs 2x TX2 + validator).
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hh"
#include "plot/roofline_chart.hh"
#include "plot/svg_writer.hh"
#include "studies/fig14_redundancy.hh"
#include "support/strings.hh"
#include "support/table.hh"

namespace {

using namespace uavf1;
using namespace uavf1::studies;

void
printFigure()
{
    bench::banner("Fig. 14", "Dual modular redundancy on AscTec "
                             "Pelican (DroNet @ 178 Hz)");

    const Fig14Result result = runFig14();

    TextTable table({"Configuration", "Replicas", "Compute (g)",
                     "Takeoff (g)", "a_max (m/s^2)", "Roof (m/s)",
                     "Bound"});
    for (const auto *option : {&result.single, &result.dual}) {
        table.addRow(
            {option->name, trimmedNumber(option->replicas),
             trimmedNumber(option->computeGrams, 1),
             trimmedNumber(option->takeoffGrams, 1),
             trimmedNumber(option->aMax, 2),
             trimmedNumber(option->analysis.roofVelocity.value(),
                           2),
             core::toString(option->analysis.bound)});
    }
    std::printf("%s\n", table.render().c_str());

    bench::paperVsOurs("DMR safe-velocity loss", 33.0,
                       result.velocityLossPercent, "%");
    bench::note("both points sit past their knees (physics-bound): "
                "the redundancy cost is pure payload weight, not "
                "throughput");

    plot::Chart chart = plot::makeRooflineChart(
        "Fig. 14b: modular redundancy",
        {{"TX2", fig14Model(pipeline::RedundancyScheme::None)
                     .curve(),
          true, true},
         {"2x TX2 (DMR)",
          fig14Model(pipeline::RedundancyScheme::Dual).curve(),
          false, true}});
    plot::SvgWriter().writeFile(
        chart, bench::artifactsDir() + "/fig14_redundancy.svg");
    std::printf("  artifacts: fig14_redundancy.svg\n");
}

void
BM_Fig14Study(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(runFig14());
}
BENCHMARK(BM_Fig14Study);

} // namespace

int
main(int argc, char **argv)
{
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
