/**
 * @file
 * Fig. 13 bench: autonomy-algorithm characterization on AscTec
 * Pelican + Nvidia TX2 (SPA vs TrailNet vs DroNet).
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hh"
#include "plot/roofline_chart.hh"
#include "plot/svg_writer.hh"
#include "studies/fig13_algorithms.hh"
#include "support/strings.hh"
#include "support/table.hh"

namespace {

using namespace uavf1;
using namespace uavf1::studies;

void
printFigure()
{
    bench::banner("Fig. 13", "Autonomy algorithms on AscTec "
                             "Pelican + Nvidia TX2");

    const Fig13Result result = runFig13();

    TextTable table({"Algorithm", "f_compute (Hz)", "v_safe (m/s)",
                     "Bound", "Factor vs knee"});
    for (const auto &entry : result.entries) {
        table.addRow(
            {entry.algorithm, trimmedNumber(entry.throughputHz, 2),
             trimmedNumber(entry.analysis.safeVelocity.value(), 2),
             core::toString(entry.analysis.bound),
             trimmedNumber(entry.factorVsKnee, 2)});
    }
    std::printf("%s\n", table.render().c_str());

    bench::paperVsOurs("knee throughput", 43.0,
                       result.kneeThroughput, "Hz");
    bench::paperVsOurs("SPA safe velocity", 2.3,
                       result.entries[0].analysis.safeVelocity
                           .value(),
                       "m/s");
    bench::paperVsOurs("SPA needed speedup", 39.0,
                       result.entries[0].factorVsKnee, "x");
    bench::paperVsOurs("TrailNet over-provisioning", 1.27,
                       result.entries[1].factorVsKnee, "x");
    bench::paperVsOurs(
        "DroNet compute margin vs knee", 4.13,
        result.entries[2].throughputHz / result.kneeThroughput,
        "x");

    plot::Chart chart = plot::makeRooflineChart(
        "Fig. 13b: algorithms on Pelican + TX2",
        {{"Sense-Plan-Act", fig13Model("SPA package delivery")
                                .curve(),
          true, true},
         {"TrailNet", fig13Model("TrailNet").curve(), false, true},
         {"DroNet", fig13Model("DroNet").curve(), false, true}});
    plot::SvgWriter().writeFile(
        chart, bench::artifactsDir() + "/fig13_algorithms.svg");
    std::printf("  artifacts: fig13_algorithms.svg\n");
}

void
BM_Fig13Study(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(runFig13());
}
BENCHMARK(BM_Fig13Study);

void
BM_RooflineCurveSampling(benchmark::State &state)
{
    const auto model = fig13Model("DroNet");
    for (auto _ : state)
        benchmark::DoNotOptimize(model.curve(256));
}
BENCHMARK(BM_RooflineCurveSampling);

} // namespace

int
main(int argc, char **argv)
{
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
