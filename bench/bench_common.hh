/**
 * @file
 * Shared helpers for the per-figure bench harnesses.
 *
 * Every bench binary follows the same contract:
 *  1. print the rows/series the paper's table or figure reports,
 *     side by side with the paper's values where quoted;
 *  2. write SVG/CSV artifacts into ./artifacts/;
 *  3. run google-benchmark timers for the underlying model code.
 */

#ifndef UAVF1_BENCH_BENCH_COMMON_HH
#define UAVF1_BENCH_BENCH_COMMON_HH

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <string>

namespace uavf1::bench {

/**
 * Ensure the artifacts directory exists and return its path.
 *
 * Each binary writes into its own ./artifacts/<binary> subdirectory
 * so that parallel `ctest -j` jobs never race on the same files.
 * The binary name comes from glibc's program_invocation_short_name;
 * on non-glibc platforms there is no portable argv[0] hook here, so
 * everything falls back to the shared ./artifacts directory (and
 * `ctest -j` isolation is not guaranteed).
 */
inline std::string
artifactsDir()
{
#ifdef __GLIBC__
    const std::string dir =
        std::string("artifacts/") + program_invocation_short_name;
#else
    const std::string dir = "artifacts";
#endif
    std::filesystem::create_directories(dir);
    return dir;
}

/** Print the figure banner. */
inline void
banner(const std::string &id, const std::string &title)
{
    std::printf("\n=== %s: %s ===\n\n", id.c_str(), title.c_str());
}

/** Print one "paper vs measured" comparison line. */
inline void
paperVsOurs(const std::string &what, double paper, double ours,
            const std::string &unit)
{
    const double delta =
        paper != 0.0 ? 100.0 * (ours - paper) / paper : 0.0;
    std::printf("  %-46s paper %10.3f %-5s ours %10.3f %-5s "
                "(%+.1f%%)\n",
                what.c_str(), paper, unit.c_str(), ours,
                unit.c_str(), delta);
}

/** Print a note line. */
inline void
note(const std::string &text)
{
    std::printf("  note: %s\n", text.c_str());
}

} // namespace uavf1::bench

#endif // UAVF1_BENCH_BENCH_COMMON_HH
