/**
 * @file
 * Fig. 5 bench: the safety-model sweep (velocity vs T_action) and
 * its F-1 re-plot (velocity vs f_action), with a_max = 50 m/s^2
 * and d = 10 m.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hh"
#include "core/safety_model.hh"
#include "plot/chart.hh"
#include "plot/csv_writer.hh"
#include "plot/svg_writer.hh"
#include "studies/fig05_safety.hh"

namespace {

using namespace uavf1;
using namespace uavf1::studies;

void
printFigure()
{
    bench::banner("Fig. 5", "Safety model and the F-1 roofline "
                            "(a_max = 50 m/s^2, d = 10 m)");

    const Fig05Result result = runFig05();

    std::printf("  %-12s %-12s %-12s\n", "T_action (s)",
                "f_action (Hz)", "v_safe (m/s)");
    for (std::size_t i = 0; i < result.sweep.size();
         i += result.sweep.size() / 12) {
        const auto &p = result.sweep[i];
        std::printf("  %-12.3f %-12.3f %-12.3f\n", p.tAction,
                    p.fAction, p.vSafe);
    }

    std::printf("\n");
    bench::paperVsOurs("physics roof (T -> 0)", 32.0, result.roof,
                       "m/s");
    bench::paperVsOurs("point A velocity (1 Hz)", 10.0,
                       result.velocityAtA, "m/s");
    bench::paperVsOurs("velocity at 100 Hz mark", 30.0,
                       result.velocityAt100Hz, "m/s");
    bench::paperVsOurs("gain A -> 100 Hz (100x f)", 3.0,
                       result.gainAToKnee, "x");
    bench::paperVsOurs("gain 100 Hz -> 10 kHz", 1.0004,
                       result.gainBeyondKnee, "x");
    std::printf("  library knee (k = 0.98): %.1f Hz\n",
                result.kneeThroughput);
    bench::note("the paper marks the knee at ~100 Hz on this "
                "example; our analytic knee criterion puts it at "
                "the 98%-of-roof point");

    // Artifacts: both panels of Fig. 5.
    plot::Series sweep_t("v_safe vs T_action");
    for (const auto &p : result.sweep)
        sweep_t.add(p.tAction, p.vSafe);
    plot::Chart chart_a("Fig. 5a: Safety model",
                        plot::Axis("T_action (s)"),
                        plot::Axis("Velocity (m/s)"));
    chart_a.add(sweep_t);
    plot::SvgWriter().writeFile(
        chart_a, bench::artifactsDir() + "/fig05a_safety_model.svg");

    plot::Series sweep_f("v_safe vs f_action");
    for (auto it = result.sweep.rbegin(); it != result.sweep.rend();
         ++it) {
        sweep_f.add(it->fAction, it->vSafe);
    }
    plot::Chart chart_b(
        "Fig. 5b: F-1 plot",
        plot::Axis("f_action (Hz)", plot::Scale::Log10),
        plot::Axis("v_safe (m/s)"));
    chart_b.add(sweep_f);
    chart_b.annotate(1.0, result.velocityAtA, "A");
    chart_b.annotate(result.kneeThroughput,
                     0.98 * result.roof, "knee");
    plot::SvgWriter().writeFile(
        chart_b, bench::artifactsDir() + "/fig05b_f1_plot.svg");
    plot::CsvWriter::writeFile(
        {sweep_f}, bench::artifactsDir() + "/fig05_sweep.csv",
        "f_action_hz", "v_safe_mps");
    std::printf("  artifacts: fig05a_safety_model.svg, "
                "fig05b_f1_plot.svg, fig05_sweep.csv\n");
}

/** Timers. */
void
BM_SafetyModelEval(benchmark::State &state)
{
    const core::SafetyModel safety(
        units::MetersPerSecondSquared(50.0), units::Meters(10.0));
    double t = 0.001;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            safety.safeVelocity(units::Seconds(t)));
        t = t < 5.0 ? t * 1.01 : 0.001;
    }
}
BENCHMARK(BM_SafetyModelEval);

void
BM_KneeSolve(benchmark::State &state)
{
    const core::SafetyModel safety(
        units::MetersPerSecondSquared(50.0), units::Meters(10.0));
    for (auto _ : state)
        benchmark::DoNotOptimize(safety.kneeThroughput());
}
BENCHMARK(BM_KneeSolve);

void
BM_Fig05FullStudy(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(runFig05());
}
BENCHMARK(BM_Fig05FullStudy);

} // namespace

int
main(int argc, char **argv)
{
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
