/**
 * @file
 * Ablation: acceleration-law choice (paper Eq. 5 variants).
 *
 * The F-1 model needs one number, a_max, but Eq. 5 admits several
 * flight-condition interpretations. This bench quantifies, for the
 * same builds, how the law choice moves a_max, the roof and the
 * knee — and therefore why DESIGN.md documents which law each
 * experiment uses.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hh"
#include "components/catalog.hh"
#include "core/uav_config.hh"
#include "support/strings.hh"
#include "support/table.hh"

namespace {

using namespace uavf1;

core::UavConfig
buildWithLaw(const std::string &airframe,
             const std::string &compute,
             const std::string &sensor,
             physics::AccelerationLaw law)
{
    const auto catalog = components::Catalog::standard();
    const auto algorithms = workload::standardAlgorithms();
    physics::AccelerationOptions options;
    options.law = law;
    options.maxTilt = units::Degrees(25.0);
    return core::UavConfig::Builder(airframe + "/" +
                                    physics::toString(law))
        .airframe(catalog.airframes().byName(airframe))
        .sensor(catalog.sensors().byName(sensor))
        .compute(catalog.computes().byName(compute))
        .algorithm(algorithms.byName("DroNet"))
        .accelerationOptions(options)
        .build();
}

void
printAblation()
{
    bench::banner("Ablation", "Acceleration-law choice (DroNet "
                              "configurations)");

    const struct
    {
        const char *airframe;
        const char *compute;
        const char *sensor;
    } builds[] = {
        {"AscTec Pelican", "Nvidia TX2", "RGB-D 60FPS (4.5m)"},
        {"DJI Spark", "Intel NCS", "60FPS camera (6m)"},
        {"DJI Spark", "Nvidia AGX", "60FPS camera (6m)"},
    };
    const physics::AccelerationLaw laws[] = {
        physics::AccelerationLaw::HoverConstrained,
        physics::AccelerationLaw::VerticalExcess,
        physics::AccelerationLaw::TiltLimited,
    };

    TextTable table({"Build", "Law", "T/W", "a_max (m/s^2)",
                     "Roof (m/s)", "Knee (Hz)"});
    for (const auto &build : builds) {
        for (const auto law : laws) {
            const auto config = buildWithLaw(
                build.airframe, build.compute, build.sensor, law);
            const auto analysis = config.f1Model().analyze();
            table.addRow(
                {std::string(build.airframe) + "+" + build.compute,
                 physics::toString(law),
                 trimmedNumber(config.thrustToWeight(), 2),
                 trimmedNumber(config.maxAcceleration().value(), 2),
                 trimmedNumber(analysis.roofVelocity.value(), 2),
                 trimmedNumber(analysis.kneeThroughput.value(),
                               1)});
        }
    }
    std::printf("%s\n", table.render().c_str());
    bench::note("hover-constrained >= vertical-excess always "
                "(sqrt(twr^2-1) >= twr-1); the 25-deg tilt clip "
                "binds only for high-T/W builds. Law choice scales "
                "the roof by up to ~2x near T/W ~ 1, which is why "
                "each case study documents its law");
}

void
BM_LawEvaluation(benchmark::State &state)
{
    const auto config = buildWithLaw(
        "AscTec Pelican", "Nvidia TX2", "RGB-D 60FPS (4.5m)",
        physics::AccelerationLaw::HoverConstrained);
    for (auto _ : state)
        benchmark::DoNotOptimize(config.maxAcceleration());
}
BENCHMARK(BM_LawEvaluation);

} // namespace

int
main(int argc, char **argv)
{
    printAblation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
