/**
 * @file
 * Ablation: sensitivity of the headline factors to the knee
 * criterion k (the fraction of the physics roof at which the knee
 * is declared).
 *
 * The paper never states its knee convention; our default k = 0.98
 * was recovered from its quoted knees (43/30/26 Hz). This bench
 * shows how the knee frequency and the derived over/under-
 * provisioning factors move as k varies — i.e. how much of the
 * paper's quantitative story depends on that convention.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hh"
#include "core/f1_model.hh"
#include "studies/presets.hh"
#include "support/strings.hh"
#include "support/table.hh"

namespace {

using namespace uavf1;

void
printAblation()
{
    bench::banner("Ablation", "Knee-criterion sensitivity "
                              "(Pelican configuration)");

    TextTable table({"k (fraction of roof)", "knee (Hz)",
                     "SPA needed speedup (x)",
                     "TrailNet factor (x)", "DroNet factor (x)"});
    for (double k : {0.90, 0.95, 0.98, 0.99, 0.995}) {
        core::F1Inputs inputs =
            studies::pelicanInputs(units::Hertz(1.1));
        inputs.kneeFraction = k;
        const double knee = core::F1Model(inputs)
                                .analyze()
                                .kneeThroughput.value();
        table.addRow({trimmedNumber(k, 3), trimmedNumber(knee, 1),
                      trimmedNumber(knee / 1.1, 1),
                      trimmedNumber(55.0 / knee, 2),
                      trimmedNumber(178.0 / knee, 2)});
    }
    std::printf("%s\n", table.render().c_str());
    bench::note("k = 0.98 reproduces the paper's 43 Hz knee, 39x "
                "SPA gap, 1.27x TrailNet and 4.13x DroNet factors "
                "simultaneously; the qualitative classification "
                "(SPA compute-bound, E2E physics-bound) is stable "
                "across the whole k range");

    // Show the classification stability explicitly.
    TextTable bounds({"k", "SPA bound", "TrailNet bound",
                      "DroNet bound"});
    for (double k : {0.90, 0.95, 0.98, 0.99, 0.995}) {
        std::vector<std::string> row = {trimmedNumber(k, 3)};
        for (double f : {1.1, 55.0, 178.0}) {
            core::F1Inputs inputs =
                studies::pelicanInputs(units::Hertz(f));
            inputs.kneeFraction = k;
            row.push_back(core::toString(
                core::F1Model(inputs).analyze().bound));
        }
        bounds.addRow(row);
    }
    std::printf("%s\n", bounds.render().c_str());
}

void
BM_KneeSweep(benchmark::State &state)
{
    core::F1Inputs inputs = studies::pelicanInputs(units::Hertz(55.0));
    for (auto _ : state) {
        for (double k : {0.90, 0.95, 0.98, 0.99}) {
            inputs.kneeFraction = k;
            benchmark::DoNotOptimize(
                core::F1Model(inputs).analyze());
        }
    }
}
BENCHMARK(BM_KneeSweep);

} // namespace

int
main(int argc, char **argv)
{
    printAblation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
