/**
 * @file
 * Fig. 2b bench: UAV size classes vs battery capacity and
 * endurance.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hh"
#include "studies/fig02_swap.hh"
#include "support/table.hh"
#include "support/strings.hh"

namespace {

using namespace uavf1;
using namespace uavf1::studies;

void
printFigure()
{
    bench::banner("Fig. 2b", "Size, battery capacity and endurance "
                             "across UAV classes");

    const Fig02Result result = runFig02();
    TextTable table({"Class", "Size (mm)", "Battery (mAh)",
                     "Endurance (min)", "Usable energy (Wh)",
                     "Implied draw (W)"});
    for (const auto &row : result.rows) {
        table.addRow({row.sizeClass,
                      trimmedNumber(row.frameSizeMm),
                      trimmedNumber(row.capacityMah),
                      trimmedNumber(row.enduranceMin),
                      trimmedNumber(row.usableEnergyWh, 2),
                      trimmedNumber(row.impliedDrawW, 1)});
    }
    std::printf("%s\n", table.render().c_str());

    bench::paperVsOurs("nano battery", 240.0,
                       result.rows[0].capacityMah, "mAh");
    bench::paperVsOurs("micro battery", 1300.0,
                       result.rows[1].capacityMah, "mAh");
    bench::paperVsOurs("mini battery", 3830.0,
                       result.rows[2].capacityMah, "mAh");
    bench::paperVsOurs("nano endurance", 6.0,
                       result.rows[0].enduranceMin, "min");
    bench::paperVsOurs("mini endurance", 30.0,
                       result.rows[2].enduranceMin, "min");
}

void
BM_Fig02Study(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(runFig02());
}
BENCHMARK(BM_Fig02Study);

} // namespace

int
main(int argc, char **argv)
{
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
