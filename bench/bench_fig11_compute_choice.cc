/**
 * @file
 * Fig. 11 bench: Intel NCS vs Nvidia AGX on a DJI Spark running
 * DroNet, including the AGX 30 W -> 15 W TDP what-if.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hh"
#include "plot/roofline_chart.hh"
#include "plot/svg_writer.hh"
#include "studies/fig11_compute.hh"
#include "support/strings.hh"
#include "support/table.hh"

namespace {

using namespace uavf1;
using namespace uavf1::studies;

void
printFigure()
{
    bench::banner("Fig. 11", "Choosing onboard compute for DJI "
                             "Spark + DroNet");

    const Fig11Result result = runFig11();

    TextTable table({"Option", "DroNet (Hz)", "Heatsink (g)",
                     "Takeoff (g)", "a_max (m/s^2)", "Roof (m/s)",
                     "Bound"});
    for (const auto *option :
         {&result.ncs, &result.agx30, &result.agx15}) {
        table.addRow({option->name,
                      trimmedNumber(option->throughputHz),
                      trimmedNumber(option->heatsinkGrams, 1),
                      trimmedNumber(option->takeoffGrams, 1),
                      trimmedNumber(option->aMax, 2),
                      trimmedNumber(
                          option->analysis.roofVelocity.value(), 2),
                      core::toString(option->analysis.bound)});
    }
    std::printf("%s\n", table.render().c_str());

    bench::paperVsOurs("DroNet on NCS", 150.0,
                       result.ncs.throughputHz, "Hz");
    bench::paperVsOurs("DroNet on AGX", 230.0,
                       result.agx30.throughputHz, "Hz");
    bench::paperVsOurs("AGX-30W heatsink", 162.0,
                       result.agx30.heatsinkGrams, "g");
    bench::paperVsOurs("AGX-15W heatsink", 81.0,
                       result.agx15.heatsinkGrams, "g");
    bench::paperVsOurs("AGX 15 W roofline gain", 1.75,
                       result.agxTdpGain, "x");
    std::printf("  NCS roofline tops AGX-30W: %s (paper: yes -- "
                "\"high compute performance cannot always "
                "translate to higher safe velocity\")\n",
                result.ncsWins ? "yes" : "NO");

    // Overlayed rooflines like the paper's Fig. 11b.
    plot::Chart chart = plot::makeRooflineChart(
        "Fig. 11b: Intel NCS vs Nvidia AGX on DJI Spark",
        {{"Intel NCS", fig11Model("Intel NCS").curve(), true, true},
         {"Nvidia AGX-30W", fig11Model("Nvidia AGX").curve(), false,
          true},
         {"Nvidia AGX-15W", fig11Model("Nvidia AGX-15W").curve(),
          false, true}});
    plot::SvgWriter().writeFile(
        chart, bench::artifactsDir() + "/fig11_compute_choice.svg");
    std::printf("  artifacts: fig11_compute_choice.svg\n");
}

void
BM_Fig11Study(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(runFig11());
}
BENCHMARK(BM_Fig11Study);

void
BM_ConfigBuildAndAnalyze(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(
            fig11Model("Intel NCS").analyze());
}
BENCHMARK(BM_ConfigBuildAndAnalyze);

} // namespace

int
main(int argc, char **argv)
{
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
