/**
 * @file
 * Ablation: DVFS derating — the paper's prescribed remedy,
 * executed.
 *
 * Section VI-C: "architects can replace the over-provisioned TX2
 * with an onboard computer with 1/5th of throughput for DroNet.
 * This will lower the TDP, which will help accommodate two onboard
 * computers within the same power envelope and reduce the payload
 * weight." Section VI-D makes the same suggestion for the Spark.
 * This bench runs that remedy through the DVFS model and measures
 * the recovered safe velocity, including the reliability side of
 * the trade.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hh"
#include "components/catalog.hh"
#include "core/uav_config.hh"
#include "pipeline/reliability.hh"
#include "support/strings.hh"
#include "support/table.hh"
#include "workload/dvfs.hh"

namespace {

using namespace uavf1;

/** Pelican + (possibly derated) TX2 with a redundancy scheme. */
core::UavConfig
buildConfig(const components::ComputePlatform &platform,
            units::Hertz throughput,
            pipeline::RedundancyScheme scheme)
{
    const auto catalog = components::Catalog::standard();
    const auto algorithms = workload::standardAlgorithms();
    workload::ThroughputOracle oracle =
        workload::ThroughputOracle::standard();
    oracle.addMeasurement("DroNet", platform.name(), throughput);

    physics::AccelerationOptions accel;
    accel.law = physics::AccelerationLaw::VerticalExcess;

    return core::UavConfig::Builder(platform.name())
        .airframe(catalog.airframes().byName("AscTec Pelican"))
        .sensor(catalog.sensors().byName("RGB-D 60FPS (4.5m)"))
        .compute(platform)
        .algorithm(algorithms.byName("DroNet"))
        .throughputOracle(oracle)
        .redundancy(pipeline::ModularRedundancy(scheme))
        .accelerationOptions(accel)
        .thrustDerate(0.833)
        .build();
}

void
printAblation()
{
    bench::banner("Ablation", "DVFS derating: the paper's remedy "
                              "for over-provisioned DMR (Fig. 14)");

    const auto catalog = components::Catalog::standard();
    const auto &tx2 = catalog.computes().byName("Nvidia TX2");
    const workload::DvfsModel dvfs;

    // The paper's 1/5-throughput suggestion: 178 -> 35.6 Hz, still
    // comfortably above... the knee region of this configuration.
    const units::Hertz nominal(178.0);
    const units::Hertz fifth(178.0 / 5.0);
    const auto tx2_fifth = dvfs.derateToThroughput(
        tx2, nominal, fifth, " (1/5 clock)");

    const thermal::HeatsinkModel heatsink;
    TextTable table({"Configuration", "f_compute (Hz)", "TDP (W)",
                     "Heatsink (g)", "Compute payload (g)",
                     "v_safe (m/s)"});

    const struct
    {
        const char *label;
        const components::ComputePlatform *platform;
        units::Hertz throughput;
        pipeline::RedundancyScheme scheme;
    } rows[] = {
        {"1x TX2 @ nominal", &tx2, nominal,
         pipeline::RedundancyScheme::None},
        {"2x TX2 @ nominal (Fig. 14 DMR)", &tx2, nominal,
         pipeline::RedundancyScheme::Dual},
        {"1x TX2 @ 1/5 clock", &tx2_fifth, fifth,
         pipeline::RedundancyScheme::None},
        {"2x TX2 @ 1/5 clock (remedied DMR)", &tx2_fifth, fifth,
         pipeline::RedundancyScheme::Dual},
    };

    double v_baseline = 0.0;
    double v_dmr_nominal = 0.0;
    double v_dmr_derated = 0.0;
    for (const auto &row : rows) {
        const auto config =
            buildConfig(*row.platform, row.throughput, row.scheme);
        const auto analysis = config.f1Model().analyze();
        const double v = analysis.safeVelocity.value();
        if (std::string(row.label) == "1x TX2 @ nominal")
            v_baseline = v;
        if (std::string(row.label).find("Fig. 14") !=
            std::string::npos) {
            v_dmr_nominal = v;
        }
        if (std::string(row.label).find("remedied") !=
            std::string::npos) {
            v_dmr_derated = v;
        }
        table.addRow(
            {row.label, trimmedNumber(row.throughput.value(), 1),
             trimmedNumber(row.platform->tdp().value(), 2),
             trimmedNumber(
                 row.platform->heatsinkMass(heatsink).value(), 1),
             trimmedNumber(
                 config.redundancy()
                     .payloadMass(*row.platform, heatsink)
                     .value(),
                 1),
             trimmedNumber(v, 2)});
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("  DMR velocity loss at nominal clock: %.1f%%\n",
                100.0 * (1.0 - v_dmr_nominal / v_baseline));
    std::printf("  DMR velocity loss after DVFS remedy: %.1f%%\n",
                100.0 * (1.0 - v_dmr_derated / v_baseline));
    bench::note("derating each replica to 1/5 clock recovers most "
                "of the DMR penalty, exactly as Section VI-C "
                "predicts; the power envelope of the redundant "
                "pair drops below a single nominal TX2");

    // Reliability side of the trade (extension).
    const pipeline::ReliabilityModel reliability(0.05);
    const units::Seconds mission(1800.0);
    std::printf("\n  reliability over a 30-min mission (lambda = "
                "0.05/h per module):\n");
    for (const auto scheme : {pipeline::RedundancyScheme::None,
                              pipeline::RedundancyScheme::Dual,
                              pipeline::RedundancyScheme::Triple}) {
        std::printf("    %-14s P(unsafe) = %.2e, P(mission "
                    "success) = %.4f\n",
                    pipeline::toString(scheme),
                    reliability.unsafeFailure(scheme, mission),
                    reliability.missionSuccess(scheme, mission));
    }
}

void
BM_DvfsDerate(benchmark::State &state)
{
    const auto catalog = components::Catalog::standard();
    const auto &tx2 = catalog.computes().byName("Nvidia TX2");
    const workload::DvfsModel dvfs;
    for (auto _ : state) {
        benchmark::DoNotOptimize(dvfs.derateToThroughput(
            tx2, units::Hertz(178.0), units::Hertz(35.6), " x"));
    }
}
BENCHMARK(BM_DvfsDerate);

} // namespace

int
main(int argc, char **argv)
{
    printAblation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
