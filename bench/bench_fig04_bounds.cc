/**
 * @file
 * Fig. 4 bench: the F-1 model's three bound regions demonstrated
 * on one physical configuration.
 *
 * Fig. 4a shows the sensor-bound ceiling, compute-bound ceiling
 * and the physics roof; Fig. 4b the optimal / over- / sub-optimal
 * verdicts; Fig. 4c the effect of payload weight on the roof
 * (a1 < a2 < a3). All three panels are regenerated here from real
 * configurations instead of schematic sketches.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hh"
#include "plot/roofline_chart.hh"
#include "plot/svg_writer.hh"
#include "studies/presets.hh"
#include "support/strings.hh"
#include "support/table.hh"

namespace {

using namespace uavf1;

void
printFigure()
{
    bench::banner("Fig. 4", "Bounds, verdicts and the payload "
                            "effect (Pelican configuration)");

    // --- Fig. 4a: the three bound regions. ---
    TextTable bounds({"Scenario", "f_sensor (Hz)", "f_compute (Hz)",
                      "f_action (Hz)", "v_safe (m/s)", "Bound"});
    const struct
    {
        const char *label;
        double sensor;
        double compute;
    } scenarios[] = {
        {"compute-bound (slow algorithm)", 60.0, 5.0},
        {"sensor-bound (slow camera)", 10.0, 178.0},
        {"physics-bound (both fast)", 60.0, 178.0},
    };
    for (const auto &scenario : scenarios) {
        core::F1Inputs inputs = studies::pelicanInputs(
            units::Hertz(scenario.compute));
        inputs.sensorRate = units::Hertz(scenario.sensor);
        const auto analysis = core::F1Model(inputs).analyze();
        bounds.addRow(
            {scenario.label, trimmedNumber(scenario.sensor),
             trimmedNumber(scenario.compute),
             trimmedNumber(analysis.actionThroughput.value()),
             trimmedNumber(analysis.safeVelocity.value(), 2),
             core::toString(analysis.bound)});
    }
    std::printf("%s\n", bounds.render().c_str());

    // --- Fig. 4b: verdicts around the knee. ---
    TextTable verdicts({"f_compute vs knee", "Verdict",
                        "Factor"});
    const double knee = core::F1Model(
        studies::pelicanInputs(units::Hertz(43.0)))
        .analyze()
        .kneeThroughput.value();
    for (double factor : {0.25, 1.0, 4.0}) {
        const auto analysis =
            core::F1Model(
                studies::pelicanInputs(units::Hertz(knee * factor)))
                .analyze();
        verdicts.addRow(
            {strFormat("%.2fx knee", factor),
             core::toString(analysis.verdict),
             analysis.verdict == core::DesignVerdict::SubOptimal
                 ? strFormat("needs %.2fx",
                             analysis.requiredSpeedup)
                 : strFormat("over by %.2fx",
                             analysis.overProvisionFactor)});
    }
    std::printf("%s\n", verdicts.render().c_str());

    // --- Fig. 4c: heavier payload lowers the roof (a1 < a2 < a3
    // in the paper's annotation). ---
    TextTable payload({"a_max (m/s^2)", "Roof (m/s)", "Knee (Hz)"});
    plot::Chart chart("Fig. 4c: payload weight moves the roofline",
                      plot::Axis("Action Throughput (Hz)",
                                 plot::Scale::Log10),
                      plot::Axis("Safe Velocity (m/s)"));
    for (double a : {2.0, 4.12, 8.0}) {
        core::F1Inputs inputs =
            studies::pelicanInputs(units::Hertz(178.0));
        inputs.aMax = units::MetersPerSecondSquared(a);
        const core::F1Model model(inputs);
        const auto analysis = model.analyze();
        payload.addRow(
            {trimmedNumber(a, 2),
             trimmedNumber(analysis.roofVelocity.value(), 2),
             trimmedNumber(analysis.kneeThroughput.value(), 1)});
        plot::Series line(strFormat("a_max = %.2f m/s^2", a));
        for (const auto &point : model.curve().points) {
            line.add(point.actionThroughput.value(),
                     point.safeVelocity.value());
        }
        chart.add(std::move(line));
    }
    std::printf("%s\n", payload.render().c_str());
    bench::note("lighter payload (higher a_max) raises both the "
                "roof and the knee: a faster UAV needs faster "
                "decisions to exploit its physics");

    plot::SvgWriter().writeFile(
        chart, bench::artifactsDir() + "/fig04c_payload_effect.svg");
    std::printf("  artifacts: fig04c_payload_effect.svg\n");
}

void
BM_BoundClassification(benchmark::State &state)
{
    core::F1Inputs inputs = studies::pelicanInputs(units::Hertz(5.0));
    for (auto _ : state)
        benchmark::DoNotOptimize(core::F1Model(inputs).analyze());
}
BENCHMARK(BM_BoundClassification);

} // namespace

int
main(int argc, char **argv)
{
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
