/**
 * @file
 * Fig. 16 bench: hardware-accelerator pitfalls on a nano-UAV
 * (Navion in the SPA pipeline; PULP-DroNet end-to-end).
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hh"
#include "plot/roofline_chart.hh"
#include "plot/svg_writer.hh"
#include "studies/fig16_accelerators.hh"
#include "studies/presets.hh"
#include "support/strings.hh"
#include "support/table.hh"

namespace {

using namespace uavf1;
using namespace uavf1::studies;

void
printFigure()
{
    bench::banner("Fig. 16", "Accelerator pitfalls on a nano-UAV");

    const Fig16Result result = runFig16();

    // SPA pipeline breakdown (Fig. 16a).
    std::printf("  SPA pipeline stages (host TX2 -> with Navion):\n");
    for (std::size_t i = 0; i < result.hostPipeline.stages().size();
         ++i) {
        const auto &host = result.hostPipeline.stages()[i];
        const auto &nav = result.navionPipeline.stages()[i];
        std::printf("    %-18s %7.1f ms -> %7.1f ms\n",
                    host.name.c_str(),
                    host.latency.value() * 1000.0,
                    nav.latency.value() * 1000.0);
    }
    std::printf("    %-18s %7.1f ms -> %7.1f ms\n", "TOTAL",
                result.hostPipeline.totalLatency().value() * 1000.0,
                result.navionPipeline.totalLatency().value() *
                    1000.0);
    std::printf("\n");

    TextTable table({"Accelerator", "f_action (Hz)", "Power (W)",
                     "v_safe (m/s)", "Bound", "Needed speedup"});
    for (const auto *entry : {&result.pulp, &result.navion}) {
        table.addRow(
            {entry->name, trimmedNumber(entry->throughputHz, 2),
             trimmedNumber(entry->powerWatts, 3),
             trimmedNumber(entry->analysis.safeVelocity.value(), 2),
             core::toString(entry->analysis.bound),
             trimmedNumber(entry->requiredSpeedup, 2)});
    }
    std::printf("%s\n", table.render().c_str());

    bench::paperVsOurs("nano-UAV knee", 26.0, result.kneeThroughput,
                       "Hz");
    bench::paperVsOurs("PULP-DroNet throughput", 6.0,
                       result.pulp.throughputHz, "Hz");
    bench::paperVsOurs("PULP needed speedup", 4.33,
                       result.pulp.requiredSpeedup, "x");
    bench::paperVsOurs("Navion SPA latency", 810.0,
                       result.navionPipeline.totalLatency().value() *
                           1000.0,
                       "ms");
    bench::paperVsOurs("Navion SPA throughput", 1.23,
                       result.navion.throughputHz, "Hz");
    bench::paperVsOurs("Navion needed speedup", 21.1,
                       result.navion.requiredSpeedup, "x");
    bench::note("a 172 FPS @ 2 mW SLAM kernel barely moves the "
                "end-to-end SPA rate: the bottleneck is the "
                "mapping/planning stages");

    plot::Chart chart = plot::makeRooflineChart(
        "Fig. 16c: accelerators on the nano-UAV",
        {{"PULP-DroNet",
          core::F1Model(nanoInputs(
                            units::Hertz(result.pulp.throughputHz)))
              .curve(),
          true, true},
         {"Navion (SPA)",
          core::F1Model(nanoInputs(units::Hertz(
                            result.navion.throughputHz)))
              .curve(),
          false, true}});
    plot::SvgWriter().writeFile(
        chart, bench::artifactsDir() + "/fig16_accelerators.svg");
    std::printf("  artifacts: fig16_accelerators.svg\n");
}

void
BM_Fig16Study(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(runFig16());
}
BENCHMARK(BM_Fig16Study);

void
BM_SpaStageSubstitution(benchmark::State &state)
{
    const auto host =
        workload::SpaPipeline::mavbenchPackageDeliveryTx2();
    for (auto _ : state) {
        benchmark::DoNotOptimize(host.withStageLatency(
            "SLAM", workload::SpaPipeline::navionSlamLatency(),
            " + Navion"));
    }
}
BENCHMARK(BM_SpaStageSubstitution);

} // namespace

int
main(int argc, char **argv)
{
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
