/**
 * @file
 * Fig. 15 bench: full-system characterization — every (UAV,
 * algorithm, compute) combination, classified as compute-bound or
 * physics-bound.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hh"
#include "plot/roofline_chart.hh"
#include "plot/svg_writer.hh"
#include "studies/fig15_full_system.hh"
#include "studies/presets.hh"
#include "support/strings.hh"
#include "support/table.hh"

namespace {

using namespace uavf1;
using namespace uavf1::studies;

void
printFigure()
{
    bench::banner("Fig. 15", "Full UAV system characterization");

    const Fig15Result result = runFig15();

    TextTable table({"UAV", "Algorithm", "Compute", "f (Hz)",
                     "source", "v_safe (m/s)", "Bound",
                     "Factor vs knee"});
    for (const auto &entry : result.entries) {
        table.addRow(
            {entry.uav, entry.algorithm, entry.compute,
             trimmedNumber(entry.throughputHz, 3),
             workload::toString(entry.source),
             trimmedNumber(entry.analysis.safeVelocity.value(), 2),
             core::toString(entry.analysis.bound),
             trimmedNumber(entry.factorVsKnee, 2)});
    }
    std::printf("%s\n", table.render().c_str());

    bench::paperVsOurs("Pelican knee", 43.0, result.pelicanKnee,
                       "Hz");
    bench::paperVsOurs("Spark knee", 30.0, result.sparkKnee, "Hz");
    const auto &spark_tx2 =
        result.find("DJI Spark", "DroNet", "Nvidia TX2");
    bench::paperVsOurs("Spark+TX2 DroNet over-provisioning", 6.0,
                       spark_tx2.throughputHz / result.sparkKnee,
                       "x");
    bench::paperVsOurs(
        "Ras-Pi4 DroNet needed speedup (Pelican)", 3.3,
        result.find("AscTec Pelican", "DroNet", "Ras-Pi4")
            .factorVsKnee,
        "x");
    bench::paperVsOurs(
        "Ras-Pi4 TrailNet needed speedup (Pelican)", 110.0,
        result.find("AscTec Pelican", "TrailNet", "Ras-Pi4")
            .factorVsKnee,
        "x");
    bench::paperVsOurs(
        "Ras-Pi4 CAD2RL needed speedup (Pelican)", 660.0,
        result.find("AscTec Pelican", "CAD2RL", "Ras-Pi4")
            .factorVsKnee,
        "x");

    // The paper's Fig. 15b chart: both rooflines with the design
    // points that have measured throughputs.
    const auto oracle = workload::ThroughputOracle::standard();
    plot::Chart chart = plot::makeRooflineChart(
        "Fig. 15b: full-system characterization",
        {{"AscTec Pelican",
          core::F1Model(pelicanInputs(units::Hertz(178.0))).curve(),
          true, false},
         {"DJI Spark",
          core::F1Model(sparkInputs(units::Hertz(178.0))).curve(),
          true, false}});
    plot::Series pelican_points("Pelican design points",
                                plot::SeriesStyle::Markers);
    plot::Series spark_points("Spark design points",
                              plot::SeriesStyle::Markers);
    for (const auto &entry : result.entries) {
        if (entry.source != workload::ThroughputSource::Measured)
            continue;
        const double f =
            std::min(entry.throughputHz,
                     entry.analysis.actionThroughput.value());
        if (entry.uav == "AscTec Pelican") {
            pelican_points.add(f,
                               entry.analysis.safeVelocity.value());
        } else {
            spark_points.add(f,
                             entry.analysis.safeVelocity.value());
        }
    }
    chart.add(pelican_points).add(spark_points);
    plot::SvgWriter().writeFile(
        chart, bench::artifactsDir() + "/fig15_full_system.svg");
    std::printf("  artifacts: fig15_full_system.svg\n");
}

void
BM_Fig15Sweep(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(runFig15());
}
BENCHMARK(BM_Fig15Sweep);

} // namespace

int
main(int argc, char **argv)
{
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
