/**
 * @file
 * Batched SoA kernel perf bench and CI perf-gate artifact.
 *
 * Prints the consistency checks the batch layer must uphold (the
 * batched Monte-Carlo / fault-campaign run() is bit-identical to
 * the scalar runReference() oracle), times both sides at one
 * thread in ns/sample on the two hottest paths — the per-stage
 * Monte-Carlo pipeline and the combined fault campaign — and
 * writes BENCH_batch_kernels.json into the artifacts directory.
 * CI compares that artifact against the committed baseline in
 * bench/baselines/ via tools/check_perf.py and fails on >25%
 * ns/eval regression or any batch-vs-reference mismatch.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include "bench_common.hh"
#include "components/catalog.hh"
#include "exec/parallel.hh"
#include "fault/campaign.hh"
#include "fault/fault_spec.hh"
#include "sim/monte_carlo.hh"
#include "studies/presets.hh"
#include "workload/algorithm.hh"
#include "workload/spa_pipeline.hh"
#include "workload/throughput.hh"

namespace {

using namespace uavf1;

double
millisSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/**
 * The per-stage Monte-Carlo path (the hottest evaluation loop),
 * with AI uncertainty only: the gate tracks the evaluation
 * *kernels*, and the other spreads add identical lognormal libm
 * draw cost to both sides, diluting the ratio the gate watches
 * without exercising any batched code. The full-spread variant is
 * printed as a secondary line.
 */
sim::UncertaintySpec
pipelineSpec()
{
    const auto catalog = components::Catalog::standard();
    sim::UncertaintySpec spec;
    spec.nominal = studies::pelicanInputs(units::Hertz(20.0));
    spec.platform = catalog.rooflines().byName("TX2-CPU + Navion");
    spec.pipeline =
        workload::SpaPipeline::mavbenchPackageDeliveryTx2();
    spec.aiRelStd = 0.10;
    spec.aMaxRelStd = 0.0;
    spec.rangeRelStd = 0.0;
    spec.computeRelStd = 0.0;
    spec.sensorRelStd = 0.0;
    return spec;
}

/** The same path with every default spread active (draw-bound). */
sim::UncertaintySpec
fullSpreadSpec()
{
    sim::UncertaintySpec spec = pipelineSpec();
    spec.aMaxRelStd = 0.10;
    spec.rangeRelStd = 0.05;
    spec.computeRelStd = 0.05;
    return spec;
}

/**
 * Stage-failure campaign over the full pipeline + redundancy
 * config. Like the Monte-Carlo spec, the gated campaign keeps the
 * fault set lean: every extra fault adds one uniform draw per
 * sample to both sides identically, diluting the kernel ratio the
 * gate watches. The many-fault variant is printed as a secondary
 * line.
 */
fault::CampaignSpec
campaignSpec()
{
    const auto catalog = components::Catalog::standard();
    const auto algorithms = workload::annotatedAlgorithms();
    const auto &spa = algorithms.byName("SPA package delivery");
    const platform::RooflinePlatform &tx2 =
        catalog.rooflines().byName("Nvidia TX2");

    fault::CampaignSpec spec;
    spec.nominal = studies::pelicanInputs(units::Hertz(20.0));
    spec.platform = tx2;
    spec.profile = workload::workloadProfile(spa, tx2);
    spec.workPerFrameGop = spa.workPerFrameGop();
    spec.pipeline =
        workload::SpaPipeline::mavbenchPackageDeliveryTx2();
    spec.redundancy = pipeline::RedundancyScheme::Dual;
    spec.faults = fault::findFaultSuite("stage-failure").faults;
    return spec;
}

/** The same campaign with the mixed suite appended (draw-bound). */
fault::CampaignSpec
mixedCampaignSpec()
{
    fault::CampaignSpec spec = campaignSpec();
    for (const fault::FaultSpec &fault :
         fault::findFaultSuite("mixed").faults)
        spec.faults.push_back(fault);
    return spec;
}

/**
 * Stage-scoped platform-fault campaign on the accelerated Navion
 * family: ECC fallback derates the SLAM accelerator class and cache
 * contention inflates per-stage DRAM traffic. Platform faults with
 * a pipeline exercise the precomputed per-(mask, stage) variant
 * tables — the run() path indexes them per sample instead of
 * re-evaluating the roofline, which is exactly what this case gates.
 */
fault::CampaignSpec
stageCampaignSpec()
{
    const auto catalog = components::Catalog::standard();
    const auto algorithms = workload::annotatedAlgorithms();
    const auto &spa = algorithms.byName("SPA package delivery");
    const platform::RooflinePlatform &navion =
        catalog.rooflines().byName("TX2-CPU + Navion");

    fault::CampaignSpec spec;
    spec.nominal = studies::pelicanInputs(units::Hertz(20.0));
    spec.platform = navion;
    spec.profile = workload::workloadProfile(spa, navion);
    spec.workPerFrameGop = spa.workPerFrameGop();
    spec.pipeline =
        workload::SpaPipeline::mavbenchPackageDeliveryTx2();
    spec.faults = fault::findFaultSuite("ecc-fallback").faults;
    for (const fault::FaultSpec &fault :
         fault::findFaultSuite("cache-contention").faults)
        spec.faults.push_back(fault);
    return spec;
}

bool
identical(const sim::UncertaintyResult &a,
          const sim::UncertaintyResult &b)
{
    return a.samples == b.samples &&
           a.safeVelocity.mean == b.safeVelocity.mean &&
           a.safeVelocity.stddev == b.safeVelocity.stddev &&
           a.safeVelocity.p5 == b.safeVelocity.p5 &&
           a.safeVelocity.p50 == b.safeVelocity.p50 &&
           a.safeVelocity.p95 == b.safeVelocity.p95 &&
           a.probComputeBound == b.probComputeBound &&
           a.probComputeCeilingBinds == b.probComputeCeilingBinds &&
           a.probMemoryCeilingBinds == b.probMemoryCeilingBinds;
}

bool
identical(const fault::CampaignResult &a,
          const fault::CampaignResult &b)
{
    if (a.stageBindings.size() != b.stageBindings.size())
        return false;
    for (std::size_t s = 0; s < a.stageBindings.size(); ++s) {
        if (a.stageBindings[s].stage != b.stageBindings[s].stage ||
            a.stageBindings[s].probComputeBound !=
                b.stageBindings[s].probComputeBound ||
            a.stageBindings[s].probMemoryBound !=
                b.stageBindings[s].probMemoryBound ||
            a.stageBindings[s].probMeasured !=
                b.stageBindings[s].probMeasured)
            return false;
    }
    return a.samples == b.samples &&
           a.abortProbability == b.abortProbability &&
           a.faultActivationRate == b.faultActivationRate &&
           a.safeVelocity.mean == b.safeVelocity.mean &&
           a.safeVelocity.stddev == b.safeVelocity.stddev &&
           a.safeVelocity.p5 == b.safeVelocity.p5 &&
           a.safeVelocity.p95 == b.safeVelocity.p95 &&
           a.probComputeCeilingBinds == b.probComputeCeilingBinds &&
           a.probMemoryCeilingBinds == b.probMemoryCeilingBinds;
}

void
printFigure()
{
    bench::banner("Batch kernels",
                  "Batched SoA evaluation vs the scalar oracle");

    exec::ParallelOptions serial;
    serial.maxThreads = 1;

    // --- Monte-Carlo pipeline path -------------------------------
    const sim::MonteCarloAnalyzer analyzer(pipelineSpec());
    constexpr std::size_t mc_samples = 200000;
    const bool mc_identical =
        identical(analyzer.run(20011, 3, serial),
                  analyzer.runReference(20011, 3, serial));
    std::printf("  Monte-Carlo run() vs runReference() "
                "bit-identical: %s\n",
                mc_identical ? "yes" : "NO (BUG)");

    (void)analyzer.run(mc_samples / 10, 1, serial); // Warm-up.
    auto start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(
        analyzer.run(mc_samples, 1, serial).safeVelocity.mean);
    const double mc_batch_ms = millisSince(start);
    start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(
        analyzer.runReference(mc_samples, 1, serial)
            .safeVelocity.mean);
    const double mc_ref_ms = millisSince(start);
    const double mc_batch_ns = mc_batch_ms * 1e6 / mc_samples;
    const double mc_ref_ns = mc_ref_ms * 1e6 / mc_samples;
    std::printf("  Monte-Carlo pipeline, 1 thread: batch %.1f "
                "ns/sample, reference %.1f ns/sample (%.2fx)\n",
                mc_batch_ns, mc_ref_ns, mc_ref_ns / mc_batch_ns);

    // Secondary: all spreads active. Both sides pay the same
    // sequential lognormal draws, so the ratio shrinks toward 1 as
    // draw cost dominates — informative, not gated.
    const sim::MonteCarloAnalyzer full(fullSpreadSpec());
    start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(
        full.run(mc_samples, 1, serial).safeVelocity.mean);
    const double full_batch_ns =
        millisSince(start) * 1e6 / mc_samples;
    start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(
        full.runReference(mc_samples, 1, serial).safeVelocity.mean);
    const double full_ref_ns =
        millisSince(start) * 1e6 / mc_samples;
    std::printf("  (all spreads active: batch %.1f ns/sample, "
                "reference %.1f ns/sample, %.2fx)\n",
                full_batch_ns, full_ref_ns,
                full_ref_ns / full_batch_ns);

    // --- Combined fault campaign ---------------------------------
    const fault::FaultCampaign campaign(campaignSpec());
    constexpr std::size_t missions = 200000;
    const bool campaign_identical =
        identical(campaign.run(20011, 3, serial),
                  campaign.runReference(20011, 3, serial));
    std::printf("  Campaign run() vs runReference() "
                "bit-identical: %s\n",
                campaign_identical ? "yes" : "NO (BUG)");

    (void)campaign.run(missions / 10, 1, serial); // Warm-up.
    start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(
        campaign.run(missions, 1, serial).safeVelocity.mean);
    const double fc_batch_ms = millisSince(start);
    start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(
        campaign.runReference(missions, 1, serial)
            .safeVelocity.mean);
    const double fc_ref_ms = millisSince(start);
    const double fc_batch_ns = fc_batch_ms * 1e6 / missions;
    const double fc_ref_ns = fc_ref_ms * 1e6 / missions;
    std::printf("  Fault campaign, 1 thread: batch %.1f "
                "ns/sample, reference %.1f ns/sample (%.2fx)\n",
                fc_batch_ns, fc_ref_ns, fc_ref_ns / fc_batch_ns);

    // Secondary: mixed suite appended — five draws per sample on
    // both sides, so the ratio shrinks toward the shared draw
    // cost. Informative, not gated.
    const fault::FaultCampaign mixed(mixedCampaignSpec());
    (void)mixed.run(missions / 10, 1, serial); // Warm-up.
    start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(
        mixed.run(missions, 1, serial).safeVelocity.mean);
    const double mixed_batch_ns =
        millisSince(start) * 1e6 / missions;
    start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(
        mixed.runReference(missions, 1, serial).safeVelocity.mean);
    const double mixed_ref_ns = millisSince(start) * 1e6 / missions;
    std::printf("  (mixed suite appended: batch %.1f ns/sample, "
                "reference %.1f ns/sample, %.2fx)\n",
                mixed_batch_ns, mixed_ref_ns,
                mixed_ref_ns / mixed_batch_ns);

    // --- Stage-scoped fault campaign -----------------------------
    // Platform faults scoped to single pipeline stages: the sampler
    // indexes precomputed per-(mask, stage) variant tables, so this
    // case gates the table-lookup path the stage-scoped kinds added.
    const fault::FaultCampaign stage_campaign(stageCampaignSpec());
    const bool stage_identical =
        identical(stage_campaign.run(20011, 3, serial),
                  stage_campaign.runReference(20011, 3, serial));
    std::printf("  Stage-fault campaign run() vs runReference() "
                "bit-identical: %s\n",
                stage_identical ? "yes" : "NO (BUG)");

    (void)stage_campaign.run(missions / 10, 1, serial); // Warm-up.
    start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(
        stage_campaign.run(missions, 1, serial).safeVelocity.mean);
    const double stage_batch_ns =
        millisSince(start) * 1e6 / missions;
    start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(
        stage_campaign.runReference(missions, 1, serial)
            .safeVelocity.mean);
    const double stage_ref_ns = millisSince(start) * 1e6 / missions;
    std::printf("  Stage-fault campaign, 1 thread: batch %.1f "
                "ns/sample, reference %.1f ns/sample (%.2fx)\n",
                stage_batch_ns, stage_ref_ns,
                stage_ref_ns / stage_batch_ns);

    bench::note("absolute timings depend on the machine; CI gates "
                "on the committed baseline with 25% headroom");

    const bool bit_identical =
        mc_identical && campaign_identical && stage_identical;
    const std::string path =
        bench::artifactsDir() + "/BENCH_batch_kernels.json";
    std::ofstream json(path);
    json << "{\n"
         << "  \"benchmark\": \"batch_kernels\",\n"
         << "  \"mc_samples\": " << mc_samples << ",\n"
         << "  \"mc_pipeline_batch_ns_per_eval\": " << mc_batch_ns
         << ",\n"
         << "  \"mc_pipeline_reference_ns_per_eval\": " << mc_ref_ns
         << ",\n"
         << "  \"mc_pipeline_speedup\": " << mc_ref_ns / mc_batch_ns
         << ",\n"
         << "  \"campaign_samples\": " << missions << ",\n"
         << "  \"campaign_batch_ns_per_eval\": " << fc_batch_ns
         << ",\n"
         << "  \"campaign_reference_ns_per_eval\": " << fc_ref_ns
         << ",\n"
         << "  \"campaign_speedup\": " << fc_ref_ns / fc_batch_ns
         << ",\n"
         << "  \"stage_campaign_batch_ns_per_eval\": "
         << stage_batch_ns << ",\n"
         << "  \"stage_campaign_reference_ns_per_eval\": "
         << stage_ref_ns << ",\n"
         << "  \"stage_campaign_speedup\": "
         << stage_ref_ns / stage_batch_ns << ",\n"
         << "  \"bit_identical\": "
         << (bit_identical ? "true" : "false") << "\n"
         << "}\n";
    std::printf("  artifacts: BENCH_batch_kernels.json\n");
}

void
BM_MonteCarloPipelineBatch(benchmark::State &state)
{
    const sim::MonteCarloAnalyzer analyzer(pipelineSpec());
    exec::ParallelOptions serial;
    serial.maxThreads = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            analyzer.run(4096, 1, serial).safeVelocity.mean);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_MonteCarloPipelineBatch);

void
BM_MonteCarloPipelineReference(benchmark::State &state)
{
    const sim::MonteCarloAnalyzer analyzer(pipelineSpec());
    exec::ParallelOptions serial;
    serial.maxThreads = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            analyzer.runReference(4096, 1, serial)
                .safeVelocity.mean);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_MonteCarloPipelineReference);

void
BM_CampaignBatch(benchmark::State &state)
{
    const fault::FaultCampaign campaign(campaignSpec());
    exec::ParallelOptions serial;
    serial.maxThreads = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            campaign.run(4096, 1, serial).safeVelocity.mean);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_CampaignBatch);

void
BM_CampaignReference(benchmark::State &state)
{
    const fault::FaultCampaign campaign(campaignSpec());
    exec::ParallelOptions serial;
    serial.maxThreads = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            campaign.runReference(4096, 1, serial)
                .safeVelocity.mean);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_CampaignReference);

void
BM_StageCampaignBatch(benchmark::State &state)
{
    const fault::FaultCampaign campaign(stageCampaignSpec());
    exec::ParallelOptions serial;
    serial.maxThreads = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            campaign.run(4096, 1, serial).safeVelocity.mean);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_StageCampaignBatch);

void
BM_StageCampaignReference(benchmark::State &state)
{
    const fault::FaultCampaign campaign(stageCampaignSpec());
    exec::ParallelOptions serial;
    serial.maxThreads = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            campaign.runReference(4096, 1, serial)
                .safeVelocity.mean);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_StageCampaignReference);

} // namespace

int
main(int argc, char **argv)
{
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
