/**
 * @file
 * Fig. 12 bench: heat-sink weight vs TDP (162 g @ 30 W, 81 g @
 * 15 W, ~10 g @ 1.5 W; "~20x in TDP -> ~16.2x in heatsink
 * weight").
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hh"
#include "plot/chart.hh"
#include "plot/csv_writer.hh"
#include "plot/svg_writer.hh"
#include "thermal/heatsink.hh"

namespace {

using namespace uavf1;
using thermal::HeatsinkModel;

void
printFigure()
{
    bench::banner("Fig. 12", "Heat-sink weight vs TDP");

    const HeatsinkModel model;
    std::printf("  %-10s %-14s\n", "TDP (W)", "heatsink (g)");
    plot::Series curve("heatsink mass");
    for (double tdp = 1.0; tdp <= 34.0; tdp *= 1.3) {
        const double mass =
            model.mass(units::Watts(tdp)).value();
        std::printf("  %-10.2f %-14.2f\n", tdp, mass);
        curve.add(tdp, mass);
    }
    std::printf("\n");
    bench::paperVsOurs("heatsink @ 30 W", 162.0,
                       model.mass(units::Watts(30.0)).value(), "g");
    bench::paperVsOurs("heatsink @ 15 W", 81.0,
                       model.mass(units::Watts(15.0)).value(), "g");
    bench::paperVsOurs("heatsink @ 1.5 W", 10.0,
                       model.mass(units::Watts(1.5)).value(), "g");
    bench::paperVsOurs(
        "mass ratio across ~20x TDP", 16.2,
        model.mass(units::Watts(30.0)).value() /
            model.mass(units::Watts(1.5)).value(),
        "x");

    plot::Chart chart("Fig. 12: heat-sink weight vs TDP",
                      plot::Axis("TDP (W)"),
                      plot::Axis("Heatsink weight (g)"));
    chart.add(curve);
    chart.annotate(30.0, model.mass(units::Watts(30.0)).value(),
                   "162 g @ 30 W");
    chart.annotate(15.0, model.mass(units::Watts(15.0)).value(),
                   "81 g @ 15 W");
    chart.annotate(1.5, model.mass(units::Watts(1.5)).value(),
                   "10 g @ 1.5 W");
    plot::SvgWriter().writeFile(
        chart, bench::artifactsDir() + "/fig12_heatsink.svg");
    plot::CsvWriter::writeFile(
        {curve}, bench::artifactsDir() + "/fig12_heatsink.csv",
        "tdp_w", "heatsink_g");
    std::printf("  artifacts: fig12_heatsink.svg/.csv\n");
}

void
BM_HeatsinkMass(benchmark::State &state)
{
    const HeatsinkModel model;
    double tdp = 1.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.mass(units::Watts(tdp)));
        tdp = tdp < 30.0 ? tdp + 0.1 : 1.0;
    }
}
BENCHMARK(BM_HeatsinkMass);

} // namespace

int
main(int argc, char **argv)
{
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
