/**
 * @file
 * Ablation: tail-latency-aware F-1.
 *
 * The paper summarizes each algorithm by one throughput number. A
 * *safety* model, however, should size for the latency tail: the
 * obstacle does not wait for the fast frames. This bench
 * synthesizes a heavy-tailed planner latency trace (MAVBench-like)
 * with the same mean throughput as the paper's SPA measurement and
 * quantifies how much safe velocity a mean-based analysis
 * overstates relative to p95/p99/worst-case sizing.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hh"
#include "core/f1_model.hh"
#include "studies/presets.hh"
#include "support/strings.hh"
#include "support/table.hh"
#include "workload/latency_trace.hh"

namespace {

using namespace uavf1;
using workload::LatencyTrace;

void
printAblation()
{
    bench::banner("Ablation", "Tail-latency-aware F-1 (Pelican, "
                              "MAVBench-like SPA planner)");

    // Same mean rate as the paper's SPA measurement (1.1 Hz), with
    // a realistic heavy tail (cv = 0.6) and a well-behaved E2E
    // network (cv = 0.08) for contrast.
    const auto spa = LatencyTrace::synthesize(
        "SPA planner", units::Seconds(1.0 / 1.1), 0.6, 4096, 7);
    const auto dronet = LatencyTrace::synthesize(
        "DroNet", units::Seconds(1.0 / 178.0), 0.08, 4096, 7);

    TextTable table({"Trace", "Sizing", "f_compute (Hz)",
                     "v_safe (m/s)", "vs mean sizing"});
    for (const auto *trace : {&spa, &dronet}) {
        const double v_mean =
            core::F1Model(studies::pelicanInputs(
                              trace->meanThroughput()))
                .analyze()
                .safeVelocity.value();
        const struct
        {
            const char *label;
            units::Hertz rate;
        } sizings[] = {
            {"mean", trace->meanThroughput()},
            {"p95", trace->percentileThroughput(95.0)},
            {"p99", trace->percentileThroughput(99.0)},
            {"worst", units::rate(trace->worst())},
        };
        for (const auto &sizing : sizings) {
            const double v =
                core::F1Model(studies::pelicanInputs(sizing.rate))
                    .analyze()
                    .safeVelocity.value();
            table.addRow(
                {trace->name(), sizing.label,
                 trimmedNumber(sizing.rate.value(), 3),
                 trimmedNumber(v, 3),
                 strFormat("%+.1f%%", 100.0 * (v / v_mean - 1.0))});
        }
    }
    std::printf("%s\n", table.render().c_str());
    bench::note("for the heavy-tailed SPA planner, sizing by the "
                "mean overstates the safe velocity by a double-"
                "digit percentage vs p99 sizing; for the tight E2E "
                "distribution the gap is negligible -- a "
                "refinement the single-number F-1 model hides");
}

void
BM_TraceSynthesis(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(LatencyTrace::synthesize(
            "bench", units::Seconds(0.9), 0.6, 1024, 7));
    }
}
BENCHMARK(BM_TraceSynthesis);

void
BM_PercentileQuery(benchmark::State &state)
{
    const auto trace = LatencyTrace::synthesize(
        "bench", units::Seconds(0.9), 0.6, 4096, 7);
    double p = 50.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(trace.percentile(p));
        p = p < 99.0 ? p + 0.5 : 50.0;
    }
}
BENCHMARK(BM_PercentileQuery);

} // namespace

int
main(int argc, char **argv)
{
    printAblation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
