/**
 * @file
 * Ablation: input-uncertainty propagation through the F-1 model.
 *
 * The paper's rooflines are single lines; early-phase inputs are
 * not. This bench puts error bars on the two flagship case studies
 * (Pelican+DroNet, nano+PULP) with 1-sigma input uncertainties of
 * 10% on a_max and f_compute and 5% on sensing range, and reports
 * how *certain* the bound classification actually is.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hh"
#include "sim/monte_carlo.hh"
#include "studies/presets.hh"
#include "support/strings.hh"
#include "support/table.hh"

namespace {

using namespace uavf1;
using namespace uavf1::sim;

void
printRow(TextTable &table, const char *label,
         const UncertaintyResult &result)
{
    table.addRow(
        {label,
         strFormat("%.2f +/- %.2f", result.safeVelocity.mean,
                   result.safeVelocity.stddev),
         strFormat("[%.2f, %.2f]", result.safeVelocity.p5,
                   result.safeVelocity.p95),
         strFormat("%.1f +/- %.1f", result.kneeThroughput.mean,
                   result.kneeThroughput.stddev),
         strFormat("%.0f%%", 100.0 * result.probComputeBound),
         strFormat("%.0f%%", 100.0 * result.probPhysicsBound)});
}

void
printAblation()
{
    bench::banner("Ablation", "Monte-Carlo uncertainty on the F-1 "
                              "model (10%/10%/5% input sigmas)");

    TextTable table({"Configuration", "v_safe (m/s)",
                     "v_safe 90% CI", "knee (Hz)",
                     "P(compute-bound)", "P(physics-bound)"});

    // Pelican + DroNet: robustly physics-bound.
    UncertaintySpec pelican;
    pelican.nominal = studies::pelicanInputs(units::Hertz(178.0));
    printRow(table, "Pelican + DroNet (178 Hz)",
             MonteCarloAnalyzer(pelican).run(20000, 11));

    // Pelican + TrailNet: only 1.27x past the knee -> the
    // classification is genuinely uncertain under input noise.
    UncertaintySpec trailnet;
    trailnet.nominal = studies::pelicanInputs(units::Hertz(55.0));
    printRow(table, "Pelican + TrailNet (55 Hz)",
             MonteCarloAnalyzer(trailnet).run(20000, 12));

    // Nano + PULP: robustly compute-bound.
    UncertaintySpec nano;
    nano.nominal = studies::nanoInputs(units::Hertz(6.0));
    printRow(table, "Nano + PULP-DroNet (6 Hz)",
             MonteCarloAnalyzer(nano).run(20000, 13));

    std::printf("%s\n", table.render().c_str());
    bench::note("designs far from the knee keep their paper "
                "classification with near certainty; TrailNet's "
                "1.27x margin is fragile -- a sizeable fraction of "
                "plausible builds are actually compute-bound, "
                "which the deterministic model cannot express");
}

void
BM_MonteCarlo(benchmark::State &state)
{
    UncertaintySpec spec;
    spec.nominal = studies::pelicanInputs(units::Hertz(178.0));
    const MonteCarloAnalyzer analyzer(spec);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            analyzer.run(static_cast<std::size_t>(state.range(0)),
                         1));
    }
}
BENCHMARK(BM_MonteCarlo)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printAblation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
