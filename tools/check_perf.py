#!/usr/bin/env python3
"""Perf-regression gate for the batch-kernel benchmarks.

Compares a freshly generated bench artifact against the committed
baseline and exits non-zero when

  * any ``*_batch_ns_per_eval`` metric regressed by more than the
    threshold (default 25%, matching the headroom CI machines need
    over the machine that recorded the baseline), or
  * the artifact reports ``bit_identical: false`` — a correctness
    failure dressed up as a perf number.

Reference-path timings are reported but never gated: the scalar
oracle's speed is not a property this repo defends.

Bootstrap mode: when the baseline file does not exist yet — a brand
new benchmark landing in the same PR as its first baseline — the
gate warns and passes instead of crashing, but still fails on
``bit_identical: false`` (correctness does not bootstrap).

Usage:
    tools/check_perf.py CURRENT BASELINE [--threshold 0.25]
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="artifact JSON from this run")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional ns/eval regression (default 0.25)",
    )
    args = parser.parse_args()

    with open(args.current) as handle:
        current = json.load(handle)
    try:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
    except FileNotFoundError:
        print(
            "WARNING: no committed baseline at %s — bootstrap mode, "
            "timings not gated this run. Commit the current artifact "
            "as the baseline to arm the gate." % args.baseline,
            file=sys.stderr,
        )
        for key in sorted(current):
            if key.endswith("_ns_per_eval"):
                print("%-36s %8.2f ns (no baseline)"
                      % (key, current[key]))
        if current.get("bit_identical") is not True:
            print(
                "\nFAIL:\n  - bit_identical is %r — batch kernels "
                "diverged from the scalar oracle"
                % (current.get("bit_identical"),),
                file=sys.stderr,
            )
            return 1
        print("\nperf gate passed (bootstrap: no baseline)")
        return 0

    failures = []

    if current.get("bit_identical") is not True:
        failures.append(
            "bit_identical is %r — batch kernels diverged from the "
            "scalar oracle" % (current.get("bit_identical"),)
        )

    gated = sorted(
        key
        for key in baseline
        if key.endswith("_batch_ns_per_eval")
    )
    if not gated:
        failures.append("baseline defines no *_batch_ns_per_eval keys")

    for key in gated:
        base = baseline[key]
        if key not in current:
            failures.append("current artifact is missing %s" % key)
            continue
        now = current[key]
        limit = base * (1.0 + args.threshold)
        ratio = now / base if base > 0 else float("inf")
        status = "OK" if now <= limit else "REGRESSION"
        print(
            "%-36s %8.2f ns (baseline %8.2f, %5.2fx, limit %8.2f) %s"
            % (key, now, base, ratio, limit, status)
        )
        if now > limit:
            failures.append(
                "%s regressed: %.2f ns vs baseline %.2f ns "
                "(>%.0f%% over)" % (key, now, base, args.threshold * 100)
            )

    for key in sorted(baseline):
        if key.endswith("_reference_ns_per_eval") and key in current:
            print(
                "%-36s %8.2f ns (baseline %8.2f, not gated)"
                % (key, current[key], baseline[key])
            )

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for failure in failures:
            print("  - " + failure, file=sys.stderr)
        return 1

    print("\nperf gate passed (threshold %.0f%%)" % (args.threshold * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main())
