#!/usr/bin/env python3
"""Line-coverage floor for the fault and workload evaluation spines.

Aggregates the gcov counters a ``-DUAVF1_COVERAGE=ON`` build leaves
behind after a ctest run into a per-directory line-coverage summary
(one row per top-level directory under ``src/``), then enforces a
*soft floor* on the directories whose behaviour the test suite
promises to pin: the fault-campaign spine (``src/fault/``) and the
workload evaluators it lowers through (``src/workload/``).

The floors are deliberately set below the coverage those directories
actually have: the gate is not a ratchet chasing every last line,
it exists to catch a *collapse* — a refactor that silently detaches
the differential/fault suites from the code they are supposed to
exercise.

Lines are merged across translation units (a header line counts as
covered when any TU executed it), so the numbers match what a human
reading the annotated source would call covered.

Usage:
    tools/check_coverage.py BUILD_DIR [--floor src/fault=75] \
        [--summary coverage-summary.txt]

Requires gcov >= 9 (JSON intermediate format).
"""

import argparse
import gzip
import json
import os
import subprocess
import sys
from collections import defaultdict

DEFAULT_FLOORS = {
    "src/fault": 75.0,
    "src/workload": 75.0,
}


def parse_floor(text):
    if "=" not in text:
        raise argparse.ArgumentTypeError(
            "floor must look like src/fault=75, got %r" % text)
    directory, _, value = text.partition("=")
    return directory.strip().strip("/"), float(value)


def gcda_files(build_dir):
    for root, _dirs, files in os.walk(build_dir):
        for name in files:
            if name.endswith(".gcda"):
                yield os.path.join(root, name)


def gcov_json(gcda):
    """Run gcov on one .gcda and yield its per-file JSON records."""
    result = subprocess.run(
        ["gcov", "--json-format", "--stdout", gcda],
        capture_output=True,
        check=False,
    )
    if result.returncode != 0:
        print("WARNING: gcov failed on %s: %s"
              % (gcda, result.stderr.decode(errors="replace").strip()),
              file=sys.stderr)
        return
    payload = result.stdout
    # Older gcov honours --stdout but still gzips; sniff the magic.
    if payload[:2] == b"\x1f\x8b":
        payload = gzip.decompress(payload)
    for line in payload.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            yield json.loads(line)
        except json.JSONDecodeError:
            continue


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("build_dir",
                        help="build tree configured with "
                             "-DUAVF1_COVERAGE=ON, after a ctest run")
    parser.add_argument("--floor", action="append", type=parse_floor,
                        default=None, metavar="DIR=PCT",
                        help="minimum line coverage for one directory "
                             "(default: src/fault=75 src/workload=75)")
    parser.add_argument("--summary", default=None,
                        help="also write the summary table to this file")
    args = parser.parse_args()

    floors = dict(args.floor) if args.floor else dict(DEFAULT_FLOORS)

    repo_root = os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    src_root = os.path.join(repo_root, "src")

    # file path -> {line number -> covered?}, merged across TUs.
    covered = defaultdict(dict)
    gcda_count = 0
    for gcda in sorted(gcda_files(args.build_dir)):
        gcda_count += 1
        for record in gcov_json(gcda):
            for entry in record.get("files", []):
                path = os.path.abspath(
                    os.path.join(args.build_dir, entry["file"])
                    if not os.path.isabs(entry["file"])
                    else entry["file"])
                if not path.startswith(src_root + os.sep):
                    continue
                lines = covered[os.path.relpath(path, repo_root)]
                for line in entry.get("lines", []):
                    number = line["line_number"]
                    lines[number] = (lines.get(number, False)
                                     or line.get("count", 0) > 0)

    if gcda_count == 0:
        print("FAIL: no .gcda files under %s — configure with "
              "-DUAVF1_COVERAGE=ON and run the tests first"
              % args.build_dir, file=sys.stderr)
        return 1

    # Per top-level src/ directory: executable vs executed lines.
    totals = defaultdict(lambda: [0, 0])  # dir -> [executable, hit]
    for path, lines in covered.items():
        parts = path.split(os.sep)
        key = os.sep.join(parts[:2]) if len(parts) > 2 else parts[0]
        totals[key][0] += len(lines)
        totals[key][1] += sum(1 for hit in lines.values() if hit)

    rows = ["%-18s %10s %8s %8s"
            % ("directory", "lines", "hit", "cover"),
            "-" * 48]
    failures = []
    for key in sorted(totals):
        executable, hit = totals[key]
        pct = 100.0 * hit / executable if executable else 100.0
        marker = ""
        if key in floors:
            marker = "  (floor %.0f%%)" % floors[key]
            if pct < floors[key]:
                failures.append(
                    "%s: %.1f%% line coverage is below the %.0f%% "
                    "floor" % (key, pct, floors[key]))
        rows.append("%-18s %10d %8d %7.1f%%%s"
                    % (key, executable, hit, pct, marker))
    for directory in sorted(floors):
        if directory not in totals:
            failures.append(
                "%s: no coverage data at all (floor %.0f%%)"
                % (directory, floors[directory]))

    summary = "\n".join(rows) + "\n"
    print(summary, end="")
    if args.summary:
        with open(args.summary, "w") as handle:
            handle.write(summary)

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for failure in failures:
            print("  - " + failure, file=sys.stderr)
        return 1
    print("\ncoverage floors passed (%d .gcda files)" % gcda_count)
    return 0


if __name__ == "__main__":
    sys.exit(main())
